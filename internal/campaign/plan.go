// Plan/execute split: the planner computes what a campaign still has to
// do by diffing the desired work matrix against the recorded state, and
// the executor (campaign.go) runs exactly the stale cells.
//
// # Content-addressed incremental re-validation
//
// Every validation run records an input digest — a SHA-256 over the
// suite definition, repository revision, platform configuration and
// externals set (runner.InputDigest). The planner recomputes each
// cell's desired digest and skips the cell when the bookkeeping already
// holds a fully green run with that digest: nothing that could change
// the outcome has changed, so re-executing would only reproduce a known
// result. An unchanged re-campaign therefore plans zero cells — zero
// builds, zero runs — and a single revision bump re-plans only the
// affected experiment's cells. This is what lets the paper's cron-driven
// system run for years: the regular re-validation is cheap whenever
// nothing moved.
//
// Migration cells need one extra record: a migration that converges
// does so at a *later* revision than it started from (interventions are
// patches), so its final green run's digest never equals the digest of
// the cell that initiated it. The executor therefore writes a
// cell-completion record into the "plan" storage namespace, keyed by
// the cell's start-time digest, and the planner consults it: a
// migration whose exact input state previously converged green is
// up-to-date even though no single run carries its digest.
package campaign

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/bookkeep"
	"repro/internal/externals"
	"repro/internal/storage"
)

// PlanNS is the storage namespace holding the planner's records: one
// cell-completion record per executed migration cell (keyed by input
// digest) and the most recent computed plan (LatestPlanKey).
const PlanNS = "plan"

// LatestPlanKey is the name the most recently computed plan is recorded
// under in PlanNS, so read-side consumers (spserve) can surface which
// cells the producer last skipped as up-to-date.
const LatestPlanKey = "latest"

// Decision is the planner's verdict for one cell.
type Decision int

const (
	// DecisionRun means the cell is stale and must execute.
	DecisionRun Decision = iota
	// DecisionSkip means the recorded state already covers the cell's
	// current inputs: no build, no run.
	DecisionSkip
)

// String returns "run" or "skip".
func (d Decision) String() string {
	if d == DecisionSkip {
		return "skip"
	}
	return "run"
}

// PlannedCell pairs one cell with the planner's verdict.
type PlannedCell struct {
	Cell Cell
	// Digest is the cell's content-addressed input digest at plan time
	// (empty when the experiment is not registered).
	Digest string
	// Decision says whether the executor will run the cell.
	Decision Decision
	// Reason explains the decision, for operators and dry runs.
	Reason string
	// PriorRunID names the green run already covering the cell when the
	// decision is DecisionSkip.
	PriorRunID string
}

// Plan is the diff of a desired work matrix against the recorded state:
// one verdict per cell, in submission order.
type Plan struct {
	Cells []PlannedCell
	// PlannedAt is the simulated-clock timestamp of planning.
	PlannedAt int64
}

// RunCount returns how many cells the plan executes.
func (p *Plan) RunCount() int {
	n := 0
	for _, c := range p.Cells {
		if c.Decision == DecisionRun {
			n++
		}
	}
	return n
}

// SkipCount returns how many cells the plan skips as up-to-date.
func (p *Plan) SkipCount() int { return len(p.Cells) - p.RunCount() }

// Render returns the operator-facing plan listing: one line per cell
// with its decision and reason — the output of `spsys campaign -dry-run`.
func (p *Plan) Render() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tMODE\tDECISION\tREASON")
	for _, c := range p.Cells {
		fmt.Fprintf(tw, "%s on %v / %s\t%s\t%s\t%s\n",
			c.Cell.Experiment, c.Cell.Config, extLabel(c.Cell.Externals), c.Cell.Mode, c.Decision, c.Reason)
	}
	tw.Flush()
	fmt.Fprintf(&b, "plan: %d cells, %d to run, %d up-to-date\n", len(p.Cells), p.RunCount(), p.SkipCount())
	return b.String()
}

// extLabel renders a cell's externals safely (erroring cells may carry
// a nil set; they still appear in plans and outcomes).
func extLabel(s *externals.Set) string {
	if s == nil {
		return "(no externals)"
	}
	return s.String()
}

// CellKey builds the canonical "experiment|config|externals" key from
// the labels run records and matrix cells carry. Every surface that
// correlates plan cells with bookkeeping cells (spsys matrix notes,
// spserve freshness) must key through here, so a label change cannot
// silently break the match.
func CellKey(experiment, config, externals string) string {
	return experiment + "|" + config + "|" + externals
}

// Label returns the cell's CellKey.
func (c Cell) Label() string {
	return CellKey(c.Experiment, c.Config.String(), extLabel(c.Externals))
}

// Key returns the recorded cell's CellKey.
func (r PlanCellRecord) Key() string {
	return CellKey(r.Experiment, r.Config, r.Externals)
}

// cellRecord is the durable completion record of one executed migration
// cell, stored in PlanNS keyed by the cell's start-time input digest.
type cellRecord struct {
	Digest     string `json:"digest"`
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Externals  string `json:"externals"`
	Mode       string `json:"mode"`
	FinalRunID string `json:"final_run_id"`
	Passed     bool   `json:"passed"`
}

// Plan computes the campaign plan for the cells: build the bookkeeping
// index over the system's store, compute every cell's current input
// digest, and skip each cell whose digest already has a fully green run
// (or, for migrations, a green cell-completion record). Cells of an
// experiment that follow a planned-to-run migration are conservatively
// planned to run as well: the migration will move the repository
// revision, so their plan-time digests cannot be trusted at execution
// time.
func (e *Engine) Plan(cells []Cell) (*Plan, error) {
	if e.sys == nil {
		return nil, fmt.Errorf("campaign: engine has no system")
	}
	x, err := bookkeep.BuildIndex(e.sys.Store)
	if err != nil {
		return nil, fmt.Errorf("campaign: indexing recorded state: %w", err)
	}
	plan := &Plan{PlannedAt: e.sys.Clock.Unix(), Cells: make([]PlannedCell, 0, len(cells))}
	willMigrate := make(map[string]bool)
	for _, c := range cells {
		pc := PlannedCell{Cell: c, Decision: DecisionRun}
		digest, err := e.sys.CellDigestDriver(c.Experiment, c.Config, c.Externals, c.Driver)
		if err != nil {
			// Let the executor produce the proper per-cell error outcome.
			pc.Reason = "stale: " + err.Error()
			plan.Cells = append(plan.Cells, pc)
			continue
		}
		pc.Digest = digest
		switch {
		case willMigrate[c.Experiment]:
			pc.Reason = fmt.Sprintf("stale: an earlier planned migration will change the %s revision", c.Experiment)
		default:
			if runID, ok := x.GreenRun(digest); ok {
				pc.Decision = DecisionSkip
				pc.PriorRunID = runID
				pc.Reason = fmt.Sprintf("up-to-date: green %s has this input digest", runID)
				break
			}
			if c.Mode == ModeMigrate {
				if rec, ok := loadCellRecord(e.sys.Store, digest); ok && rec.Passed {
					pc.Decision = DecisionSkip
					pc.PriorRunID = rec.FinalRunID
					pc.Reason = fmt.Sprintf("up-to-date: migration from this input state already converged (%s)", rec.FinalRunID)
					break
				}
			}
			pc.Reason = staleReason(x, c)
		}
		if pc.Decision == DecisionRun && c.Mode == ModeMigrate {
			willMigrate[c.Experiment] = true
		}
		plan.Cells = append(plan.Cells, pc)
	}
	return plan, nil
}

// staleReason classifies why a cell needs to run, from the cell's
// recorded history.
func staleReason(x *bookkeep.Index, c Cell) string {
	latest, ok := x.Latest(c.Experiment, c.Config.String(), extLabel(c.Externals))
	switch {
	case !ok:
		return "stale: never validated"
	case !latest.Passed:
		return fmt.Sprintf("stale: last run %s was not green", latest.RunID)
	default:
		return fmt.Sprintf("stale: inputs changed since %s", latest.RunID)
	}
}

// loadCellRecord reads the completion record for a digest, if any.
func loadCellRecord(store *storage.Store, digest string) (*cellRecord, bool) {
	data, err := store.Get(PlanNS, digest)
	if err != nil {
		return nil, false
	}
	var rec cellRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	return &rec, true
}

// recordCellCompletion writes the migration cell's completion record,
// keyed by its start-time input digest. Failures to record are returned
// so the executor can surface them; a missing record only costs a
// redundant re-migration later, never correctness.
func recordCellCompletion(store *storage.Store, digest string, c Cell, finalRunID string, passed bool) error {
	rec := cellRecord{
		Digest:     digest,
		Experiment: c.Experiment,
		Config:     c.Config.String(),
		Externals:  extLabel(c.Externals),
		Mode:       c.Mode.String(),
		FinalRunID: finalRunID,
		Passed:     passed,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = store.Put(PlanNS, digest, data)
	return err
}

// PlanCellRecord is the JSON form of one planned cell, as recorded
// under PlanNS/LatestPlanKey and served by spserve's /api/plan.
type PlanCellRecord struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Externals  string `json:"externals"`
	Mode       string `json:"mode"`
	Digest     string `json:"digest,omitempty"`
	Decision   string `json:"decision"`
	Reason     string `json:"reason"`
	PriorRunID string `json:"prior_run_id,omitempty"`
}

// PlanRecord is the durable JSON form of a computed plan.
type PlanRecord struct {
	PlannedAt int64            `json:"planned_at"`
	Runs      int              `json:"runs"`
	Skips     int              `json:"skips"`
	Cells     []PlanCellRecord `json:"cells"`
}

// Record flattens the plan into its durable form.
func (p *Plan) Record() PlanRecord {
	rec := PlanRecord{
		PlannedAt: p.PlannedAt,
		Runs:      p.RunCount(),
		Skips:     p.SkipCount(),
		Cells:     make([]PlanCellRecord, len(p.Cells)),
	}
	for i, c := range p.Cells {
		rec.Cells[i] = PlanCellRecord{
			Experiment: c.Cell.Experiment,
			Config:     c.Cell.Config.String(),
			Externals:  extLabel(c.Cell.Externals),
			Mode:       c.Cell.Mode.String(),
			Digest:     c.Digest,
			Decision:   c.Decision.String(),
			Reason:     c.Reason,
			PriorRunID: c.PriorRunID,
		}
	}
	return rec
}

// Store records the plan as the store's latest plan, so read-side
// status surfaces can show which cells the producer last skipped as
// up-to-date.
func (p *Plan) Store(store *storage.Store) error {
	data, err := json.Marshal(p.Record())
	if err != nil {
		return fmt.Errorf("campaign: encoding plan: %w", err)
	}
	if _, err := store.Put(PlanNS, LatestPlanKey, data); err != nil {
		return fmt.Errorf("campaign: recording plan: %w", err)
	}
	return nil
}

// LoadLatestPlan returns the store's most recently recorded plan, or
// (nil, nil) when no campaign has recorded one yet.
func LoadLatestPlan(store *storage.Store) (*PlanRecord, error) {
	if !store.Exists(PlanNS, LatestPlanKey) {
		return nil, nil
	}
	data, err := store.Get(PlanNS, LatestPlanKey)
	if err != nil {
		return nil, err
	}
	var rec PlanRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("campaign: corrupt plan record: %w", err)
	}
	return &rec, nil
}
