package campaign

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/platform"
)

// scaled returns the experiment definition with workloads shrunk for
// test turnaround while keeping the suite structure.
func scaled(def experiments.Definition) experiments.Definition {
	def.RepoSpec.Packages = 12
	def.ChainEvents = 200
	def.StandaloneTests = 6
	return def
}

// newSystem builds a fresh deterministic system with every HERA
// experiment registered at test scale.
func newSystem(t *testing.T) *core.SPSystem {
	t.Helper()
	sys := core.New()
	for _, def := range experiments.All() {
		if err := sys.RegisterExperiment(scaled(def)); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func stdSet(t *testing.T, sys *core.SPSystem) *externals.Set {
	t.Helper()
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		t.Fatal(err)
	}
	return exts
}

// testConfigs returns the baseline plus two migration targets.
func testConfigs() (baseline platform.Config, targets []platform.Config) {
	return platform.OriginalConfig(), []platform.Config{
		platform.ReferenceConfig(),
		{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"},
	}
}

// cellTotals is the order-independent footprint of a bookkeeping cell:
// everything except the run IDs and timestamps, which may legitimately
// interleave differently across experiments under parallelism.
type cellTotals struct {
	Experiment, Config, Externals string
	Pass, Fail, Skip, Error, Runs int
}

func campaignTotals(t *testing.T, workers int) (totals []cellTotals, campaignRuns, totalRuns int) {
	t.Helper()
	sys := newSystem(t)
	exts := stdSet(t, sys)
	baseline, targets := testConfigs()
	cells := MatrixPlan(sys.Experiments(), baseline, append([]platform.Config{baseline}, targets...), []*externals.Set{exts})

	sum, err := New(sys, workers).Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range sum.Outcomes {
		if o.Err != nil {
			t.Fatalf("cell %d (%s %v): %v", i, o.Cell.Experiment, o.Cell.Config, o.Err)
		}
		if !o.Passed {
			t.Fatalf("cell %d (%s %s %v) did not end green", i, o.Cell.Experiment, o.Cell.Mode, o.Cell.Config)
		}
	}
	for _, c := range sum.Matrix {
		totals = append(totals, cellTotals{
			Experiment: c.Experiment, Config: c.Config, Externals: c.Externals,
			Pass: c.Pass, Fail: c.Fail, Skip: c.Skip, Error: c.Error, Runs: c.Runs,
		})
	}
	return totals, sum.CampaignRuns(), sum.TotalRuns
}

// TestParallelMatchesSerial is the engine's core guarantee: the same
// work matrix executed with one worker and with many produces identical
// bookkeeping — same cells, same per-cell run counts, same outcomes —
// because per-experiment ordering barriers preserve the serial
// repository history.
func TestParallelMatchesSerial(t *testing.T) {
	serialTotals, serialCampaign, serialTotal := campaignTotals(t, 1)
	parallelTotals, parallelCampaign, parallelTotal := campaignTotals(t, 8)

	if !reflect.DeepEqual(serialTotals, parallelTotals) {
		t.Fatalf("matrix totals diverge:\nserial:   %+v\nparallel: %+v", serialTotals, parallelTotals)
	}
	if serialCampaign != parallelCampaign || serialTotal != parallelTotal {
		t.Fatalf("run counts diverge: serial %d/%d, parallel %d/%d",
			serialCampaign, serialTotal, parallelCampaign, parallelTotal)
	}
	// The matrix must cover experiments × configs for the one externals
	// set: 3 experiments × 3 configs.
	if len(serialTotals) != 9 {
		t.Fatalf("matrix has %d cells, want 9", len(serialTotals))
	}
}

// TestEngineMatchesDirectCoreCalls pins the engine to the behaviour of
// the hand-written serial loop it replaces.
func TestEngineMatchesDirectCoreCalls(t *testing.T) {
	baseline, targets := testConfigs()

	// Hand-written serial campaign, as cmd/spsys and the Figure 3
	// benchmark used to do it.
	serial := newSystem(t)
	exts := stdSet(t, serial)
	for _, exp := range serial.Experiments() {
		if _, err := serial.Validate(exp, baseline, exts, "baseline"); err != nil {
			t.Fatal(err)
		}
	}
	for _, cfg := range targets {
		for _, exp := range serial.Experiments() {
			if _, err := serial.MigrateExperiment(exp, cfg, exts, fmt.Sprintf("matrix %v", cfg)); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantRuns := serial.Book.TotalRuns()
	wantMatrix, err := serial.Matrix()
	if err != nil {
		t.Fatal(err)
	}

	gotTotals, gotCampaign, gotTotal := campaignTotals(t, 4)
	if gotCampaign != wantRuns || gotTotal != wantRuns {
		t.Fatalf("engine recorded %d/%d runs, direct loop recorded %d", gotCampaign, gotTotal, wantRuns)
	}
	if len(gotTotals) != len(wantMatrix) {
		t.Fatalf("engine matrix has %d cells, direct loop %d", len(gotTotals), len(wantMatrix))
	}
	for i, c := range wantMatrix {
		g := gotTotals[i]
		if g.Experiment != c.Experiment || g.Config != c.Config || g.Externals != c.Externals ||
			g.Pass != c.Pass || g.Fail != c.Fail || g.Skip != c.Skip || g.Error != c.Error || g.Runs != c.Runs {
			t.Fatalf("cell %d diverges: engine %+v, direct %+v", i, g, c)
		}
	}
}

func TestDependenciesBarriers(t *testing.T) {
	v := func(exp string) Cell { return Cell{Experiment: exp, Mode: ModeValidate} }
	m := func(exp string) Cell { return Cell{Experiment: exp, Mode: ModeMigrate} }

	cells := []Cell{
		v("H1"),   // 0: no deps
		v("ZEUS"), // 1: no deps
		v("H1"),   // 2: no deps (reads only, parallel with 0)
		m("H1"),   // 3: waits for 0 and 2
		v("H1"),   // 4: waits for barrier 3
		m("H1"),   // 5: waits for barrier 3 and 4
		m("ZEUS"), // 6: waits for 1
	}
	want := [][]int{nil, nil, nil, {0, 2}, {3}, {3, 4}, {1}}
	got := dependencies(cells)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) && !(len(got[i]) == 0 && len(want[i]) == 0) {
			t.Fatalf("deps[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestCellErrorsAreRecordedNotFatal(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	cells := []Cell{
		{Experiment: "NOPE", Config: platform.ReferenceConfig(), Externals: exts, Mode: ModeValidate},
		{Experiment: "H1", Config: platform.OriginalConfig(), Externals: exts, Mode: ModeValidate},
	}
	sum, err := New(sys, 2).Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Outcomes[0].Err == nil {
		t.Fatal("unknown experiment did not error")
	}
	if sum.Outcomes[1].Err != nil || !sum.Outcomes[1].Passed {
		t.Fatalf("healthy cell affected by broken one: %+v", sum.Outcomes[1])
	}
	if sum.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", sum.Failed())
	}
	if sum.CampaignRuns() != 1 {
		t.Fatalf("CampaignRuns() = %d, want 1", sum.CampaignRuns())
	}
}

func TestMatrixPlanShape(t *testing.T) {
	baseline, targets := testConfigs()
	exps := []string{"H1", "ZEUS"}
	extsA := &externals.Set{}
	extsB := &externals.Set{}
	cells := MatrixPlan(exps, baseline, append([]platform.Config{baseline}, targets...), []*externals.Set{extsA, extsB})

	// Per externals set: 2 baselines + 2 targets × 2 experiments = 6.
	if len(cells) != 12 {
		t.Fatalf("plan has %d cells, want 12", len(cells))
	}
	for i, c := range cells[:2] {
		if c.Mode != ModeValidate || c.Config != baseline {
			t.Fatalf("cell %d: want baseline validate, got %s on %v", i, c.Mode, c.Config)
		}
	}
	migrations := 0
	for _, c := range cells {
		if c.Mode == ModeMigrate {
			migrations++
			if c.Config == baseline {
				t.Fatal("plan migrates to the baseline configuration")
			}
		}
	}
	if migrations != 8 {
		t.Fatalf("plan has %d migrations, want 8", migrations)
	}
}

// TestManyIdenticalValidateCells floods the pool with identical
// validate-only work: no barriers, so everything runs concurrently, and
// the builder's singleflight should be deduplicating identical builds.
func TestManyIdenticalValidateCells(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	// All-validate plan: no barriers, maximum available parallelism.
	var cells []Cell
	for i := 0; i < 6; i++ {
		for _, exp := range sys.Experiments() {
			cells = append(cells, Cell{
				Experiment: exp, Config: platform.OriginalConfig(), Externals: exts,
				Mode: ModeValidate, Tag: fmt.Sprintf("load %d", i),
			})
		}
	}
	sum, err := New(sys, 2).Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CampaignRuns(); got != len(cells) {
		t.Fatalf("recorded %d runs, want %d", got, len(cells))
	}
	for i, o := range sum.Outcomes {
		if o.Err != nil || !o.Passed {
			t.Fatalf("cell %d failed: %+v", i, o)
		}
	}
}
