// The distributed executor: DrainPlan runs a plan's stale cells by
// racing lease claims against every other worker draining the same
// plan, instead of assuming it owns the whole matrix the way
// RunPlanContext does. Each worker — an spd primary on the store
// directory, or any number of `spd -worker` processes over the write
// API — independently recomputes the identical deterministic plan,
// then claims cells one at a time: claim, execute, renew while
// executing, mark done. The store is the only coordination channel.
package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/storage"
)

// QueueOptions configures a distributed drain.
type QueueOptions struct {
	// Worker is this process's identity in lease records.
	Worker string
	// TTL is the lease horizon (DefaultLeaseTTL when zero). Healthy
	// holders renew at TTL/3; a holder silent for a full TTL is
	// presumed dead and its cells are stolen.
	TTL time.Duration
	// Poll is the idle wait between queue passes when every remaining
	// cell is leased by someone else (default 2s).
	Poll time.Duration
	// Now is the clock seam (cron.Wall when nil).
	Now func() time.Time
	// Sleep is the wait seam (cron.Sleeper when nil).
	Sleep func(time.Duration)
	// OnEvent, when non-nil, receives one line per queue transition
	// (claim, steal, done, peer-done, lost, wait) for operator logs.
	OnEvent func(format string, args ...interface{})
}

// QueueStats counts what one worker's drain did — the figures the
// distributed-smoke CI job sums across workers to prove no cell ran
// twice.
type QueueStats struct {
	// Executed counts cells this worker claimed and ran.
	Executed int
	// Stolen counts executed cells whose claim was an expiry steal.
	Stolen int
	// PeerDone counts cells another worker completed.
	PeerDone int
	// PlanSkips counts cells the plan itself marked up-to-date.
	PlanSkips int
	// Lost counts leases stolen from this worker mid-execution.
	Lost int
	// Waits counts idle polls while peers held the remaining cells.
	Waits int
}

// queueState tracks one cell's local status during a drain.
type queueState int

const (
	cellPending  queueState = iota
	cellClaiming            // a local goroutine is claiming or executing it
	cellDone
)

// DrainPlan executes the plan as one worker of a distributed campaign:
// every stale cell is executed by exactly one of the workers draining
// the same store (lease claims decide which), and this worker's summary
// reports peer-completed cells as skips carrying the peer's run ID.
// Within the process, up to Engine.Workers cells run concurrently; the
// same per-experiment migration barriers as RunPlanContext gate claims,
// with peer-completed cells counting as satisfied barriers.
//
// Cancellation mirrors RunPlanContext: executing cells finish and
// complete their leases (a half-done cell is worse than a slow
// shutdown); cells claimed but not yet started are released for
// immediate re-claim; unstarted cells report ctx.Err().
func (e *Engine) DrainPlan(ctx context.Context, plan *Plan, opts QueueOptions) (*Summary, *QueueStats, error) {
	if e.sys == nil {
		return nil, nil, fmt.Errorf("campaign: engine has no system")
	}
	if opts.Worker == "" {
		opts.Worker = "worker"
	}
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = cron.Wall()
	}
	if opts.Sleep == nil {
		opts.Sleep = cron.Sleeper()
	}
	logf := opts.OnEvent
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	mgr := NewLeaseManager(e.sys.Store, opts.Worker, opts.TTL, opts.Now)
	e.fillDigests(plan)

	cells := make([]Cell, len(plan.Cells))
	for i, pc := range plan.Cells {
		cells[i] = pc.Cell
	}
	deps := dependencies(cells)
	outcomes := make([]Outcome, len(cells))
	var (
		mu         sync.Mutex
		stats      QueueStats
		state      = make([]queueState, len(cells))
		busySeq    = make([]int, len(cells)) // refresh seq of the last ClaimBusy verdict
		refreshSeq = 1                       // bumped after every idle refresh
	)
	for i, pc := range plan.Cells {
		if pc.Decision == DecisionSkip {
			outcomes[i] = Outcome{Cell: pc.Cell, RunID: pc.PriorRunID, Skipped: true, Passed: true}
			state[i] = cellDone
			stats.PlanSkips++
		}
		busySeq[i] = 0
	}

	// nextCell picks the lowest pending cell whose barriers are done and
	// that has not been found busy since the last refresh, marking it
	// claiming. ok=false when the queue is fully drained.
	nextCell := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		allDone := true
		for i := range state {
			if state[i] == cellDone {
				continue
			}
			allDone = false
			if state[i] != cellPending || busySeq[i] >= refreshSeq {
				continue
			}
			ready := true
			for _, d := range deps[i] {
				if state[d] != cellDone {
					ready = false
					break
				}
			}
			if ready {
				state[i] = cellClaiming
				return i, true
			}
		}
		return -1, !allDone
	}
	markDone := func(i int, out Outcome) {
		mu.Lock()
		outcomes[i] = out
		state[i] = cellDone
		mu.Unlock()
	}
	markBusy := func(i int) {
		mu.Lock()
		busySeq[i] = refreshSeq
		state[i] = cellPending
		mu.Unlock()
	}

	// idleWait refreshes the store view (how a remote worker observes
	// peers' lease transitions) and sleeps one poll interval. Serialized
	// so concurrent idle workers don't multiply refresh walks.
	var idleMu sync.Mutex
	idleWait := func() {
		idleMu.Lock()
		defer idleMu.Unlock()
		mu.Lock()
		stats.Waits++
		mu.Unlock()
		opts.Sleep(opts.Poll)
		if err := e.sys.Store.Refresh(); err != nil {
			logf("queue: refresh: %v", err)
		}
		mu.Lock()
		refreshSeq++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i, more := nextCell()
				if i < 0 {
					if !more {
						return
					}
					idleWait()
					continue
				}
				pc := plan.Cells[i]
				label := pc.Cell.Label()
				lease, status, rec, err := mgr.Claim(queueDigest(pc), label)
				if err != nil {
					// A claim that cannot reach the store is retried after a
					// poll like a busy cell; the store outage is surfaced once
					// the context gives up.
					logf("queue: claiming %s: %v", label, err)
					markBusy(i)
					idleWait()
					continue
				}
				switch status {
				case ClaimDone:
					logf("queue: %s done by peer %s (%s)", label, rec.Worker, rec.RunID)
					markDone(i, Outcome{Cell: pc.Cell, RunID: rec.RunID, Skipped: true, Passed: rec.Passed})
					mu.Lock()
					stats.PeerDone++
					mu.Unlock()
				case ClaimBusy:
					logf("queue: %s held by %s until %d", label, rec.Worker, rec.Deadline)
					markBusy(i)
				case ClaimWon:
					if lease.Stole {
						logf("queue: stole expired lease for %s (epoch %d, steals %d)", label, rec.Epoch, rec.Steals)
					} else {
						logf("queue: claimed %s (epoch %d)", label, rec.Epoch)
					}
					// A cancellation that lands after the claim but before the
					// cell starts hands the lease straight back.
					if ctx.Err() != nil {
						if rerr := mgr.Release(lease); rerr != nil {
							logf("queue: releasing %s: %v", label, rerr)
						} else {
							logf("queue: released %s (shutdown)", label)
						}
						markDone(i, Outcome{Cell: pc.Cell, Err: ctx.Err()})
						return
					}
					out, lost := e.executeLeased(lease, pc, mgr, opts, logf)
					markDone(i, out)
					mu.Lock()
					stats.Executed++
					if lease.Stole {
						stats.Stolen++
					}
					if lost {
						stats.Lost++
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Cells never started (cancellation) report the context error.
	mu.Lock()
	for i := range state {
		if state[i] != cellDone {
			outcomes[i] = Outcome{Cell: cells[i], Err: ctx.Err()}
			if outcomes[i].Err == nil {
				outcomes[i].Err = fmt.Errorf("campaign: cell never claimed")
			}
		}
	}
	mu.Unlock()

	matrix, err := e.sys.Matrix()
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: aggregating matrix: %w", err)
	}
	return &Summary{
		Outcomes:  outcomes,
		Plan:      plan,
		Matrix:    matrix,
		TotalRuns: e.sys.Book.TotalRuns(),
	}, &stats, nil
}

// queueDigest returns the lease identity of a planned cell: its input
// digest, or — for cells whose digest could not be computed (the
// planner recorded the error; the executor will produce the error
// outcome) — a content hash of the cell label, so even broken cells
// are executed by exactly one worker.
func queueDigest(pc PlannedCell) string {
	if pc.Digest != "" {
		return pc.Digest
	}
	return storage.HashBytes([]byte("cell-label:" + pc.Cell.Label()))
}

// executeLeased runs one claimed cell with a renewal heartbeat, then
// completes the lease with the verdict. A lease lost mid-execution
// (this worker stalled past its deadline and a peer stole the cell)
// demotes the outcome to non-authoritative: the runs this worker
// recorded remain in the store — append-only, digest-deduplicated —
// but the thief owns the verdict.
func (e *Engine) executeLeased(lease *Lease, pc PlannedCell, mgr *LeaseManager, opts QueueOptions, logf func(string, ...interface{})) (Outcome, bool) {
	label := pc.Cell.Label()
	stop := make(chan struct{})
	lostc := make(chan struct{})
	go func() {
		interval := mgr.TTL() / 3
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			opts.Sleep(interval)
			select {
			case <-stop:
				return
			default:
			}
			if err := mgr.Renew(lease); err != nil {
				logf("queue: renewing %s: %v", label, err)
				close(lostc)
				return
			}
		}
	}()
	out := e.runCell(pc)
	close(stop)
	select {
	case <-lostc:
		// The renewal loop already lost the lease; don't try to complete.
		out.Err = fmt.Errorf("campaign: %s: %w", label, ErrLeaseLost)
		return out, true
	default:
	}
	if err := mgr.Complete(lease, out.RunID, out.Passed && out.Err == nil); err != nil {
		logf("queue: completing %s: %v", label, err)
		out.Err = fmt.Errorf("campaign: %s: %w", label, err)
		return out, true
	}
	logf("queue: completed %s (%s, passed=%v)", label, out.RunID, out.Passed)
	return out, false
}
