// Package campaign is the concurrent campaign engine of the sp-system:
// it executes a work matrix of validation cells — experiments × platform
// configurations × external software sets — on a bounded worker pool and
// aggregates the per-cell outcomes into the bookkeeping matrix. This is
// how the paper's ">300 validation runs" campaign actually ran: many
// client machines working the matrix at once against one common storage,
// not one client grinding through it serially.
//
// # Worker-pool design
//
// Every cell becomes one job. Jobs start in submission order, run on at
// most Workers goroutines, and publish their outcome at their cell's
// index, so results are deterministic regardless of scheduling.
//
// Cells of *different* experiments never share mutable state — the
// store, runner, builder and clock are all thread-safe — so they run
// fully in parallel. Within one experiment the engine inserts ordering
// barriers: a migration cell mutates the experiment's software
// repository (interventions are source patches), so it waits for every
// earlier cell of that experiment and blocks every later one. Validation
// cells between two barriers only read the repository and therefore run
// concurrently with each other. The result is exactly the serial
// campaign's per-experiment history — same repository state before each
// migration, hence the same iterations, runs and matrix totals — with
// all the parallelism that is actually safe.
//
// # Build deduplication
//
// Concurrent cells frequently demand the same build (same repository
// revision, configuration and externals): every standalone-test client
// of an experiment needs the identical tar-balls. The builder
// (internal/buildsys) coalesces identical concurrent builds in a
// singleflight layer, so one worker compiles and the rest share its
// result; the engine simply rides on that. Run and job IDs stay unique
// under this parallelism because the ID counters are incremented
// atomically inside the common storage itself (storage.Increment).
package campaign

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bookkeep"
	"repro/internal/core"
	"repro/internal/externals"
	"repro/internal/migrate"
	"repro/internal/platform"
	"repro/internal/runner"
)

// Mode selects what a cell does.
type Mode int

const (
	// ModeValidate runs one full validation (build + suite) of the cell.
	ModeValidate Mode = iota
	// ModeMigrate runs an adapt-and-validate migration campaign to the
	// cell's configuration, applying source interventions until the
	// suite is green or the iteration budget is exhausted.
	ModeMigrate
)

// String returns "validate" or "migrate".
func (m Mode) String() string {
	if m == ModeMigrate {
		return "migrate"
	}
	return "validate"
}

// Cell is one unit of campaign work: an experiment on a platform
// configuration with an externals set.
type Cell struct {
	Experiment string
	Config     platform.Config
	Externals  *externals.Set
	Mode       Mode
	// Tag describes the cell's runs in the bookkeeping.
	Tag string
	// Driver names the execution driver the cell's suite runs on (see
	// core.SPSystem.Driver). Empty means the default in-process platform
	// driver — which is what every cell was before the driver seam
	// existed, so recorded campaigns keep their digests. Non-default
	// drivers are folded into the cell's input digest: a vmhost run and
	// a platform run of the same suite are different cells.
	Driver string
}

// Outcome is the recorded result of one cell.
type Outcome struct {
	Cell Cell
	// RunID is the cell's final validation run; for a skipped cell it is
	// the prior green run that made re-execution unnecessary.
	RunID string
	// Skipped reports that the planner found the cell up-to-date: no
	// build and no run were executed, and Passed is true because the
	// covering run was green.
	Skipped bool
	// Passed reports a green validation or a converged migration.
	Passed bool
	// Runs counts the validation runs the cell produced (a migration
	// produces one per iteration).
	Runs int
	// Record is the run record (ModeValidate).
	Record *runner.RunRecord
	// Report is the migration report (ModeMigrate).
	Report *migrate.Report
	// Err is set when the cell could not execute at all (unknown
	// experiment, invalid configuration); a failing-but-recorded run is
	// not an error.
	Err error
}

// Summary aggregates a campaign.
type Summary struct {
	// Outcomes holds one entry per submitted cell, in submission order.
	Outcomes []Outcome
	// Plan is the executed plan (every cell forced to run for plain
	// Run).
	Plan *Plan
	// Matrix is the bookkeeping status matrix after the campaign — the
	// paper's Figure 3 aggregation over the common storage.
	Matrix []bookkeep.Cell
	// TotalRuns is the number of validation runs recorded in the
	// bookkeeping after the campaign (including any pre-existing runs).
	TotalRuns int
}

// Skipped counts cells the planner skipped as up-to-date.
func (s *Summary) Skipped() int {
	n := 0
	for _, o := range s.Outcomes {
		if o.Skipped {
			n++
		}
	}
	return n
}

// CampaignRuns sums the validation runs produced by this campaign's
// cells alone.
func (s *Summary) CampaignRuns() int {
	n := 0
	for _, o := range s.Outcomes {
		n += o.Runs
	}
	return n
}

// Failed counts cells that errored or did not end green.
func (s *Summary) Failed() int {
	n := 0
	for _, o := range s.Outcomes {
		if o.Err != nil || !o.Passed {
			n++
		}
	}
	return n
}

// Engine executes campaigns against one sp-system instance.
type Engine struct {
	sys *core.SPSystem
	// Workers bounds cell parallelism; values below 1 mean 1.
	Workers int
}

// New returns an Engine over the system with the given worker count.
func New(sys *core.SPSystem, workers int) *Engine {
	return &Engine{sys: sys, Workers: workers}
}

// ForceAll wraps cells in an execute-everything plan: every cell is
// DecisionRun regardless of recorded state. This is the pre-planner
// behaviour, kept for benchmarks, ablations and operator overrides.
// Digests are filled at execution time; callers that record the plan
// should prefer Engine.ForcePlan, which carries them immediately.
func ForceAll(cells []Cell) *Plan {
	p := &Plan{Cells: make([]PlannedCell, len(cells))}
	for i, c := range cells {
		p.Cells[i] = PlannedCell{Cell: c, Decision: DecisionRun, Reason: "forced"}
	}
	return p
}

// ForcePlan is ForceAll with every cell's campaign-entry input digest
// filled from the engine's system — the operator-override plan with
// full provenance, without the recorded-state index build Plan pays.
func (e *Engine) ForcePlan(cells []Cell) (*Plan, error) {
	if e.sys == nil {
		return nil, fmt.Errorf("campaign: engine has no system")
	}
	p := ForceAll(cells)
	e.fillDigests(p)
	return p, nil
}

// fillDigests computes the missing input digests of a plan's cells at
// the current (campaign-entry) repository state. Cells whose
// experiment is not registered keep an empty digest; the executor
// produces their error outcome.
func (e *Engine) fillDigests(plan *Plan) {
	for i := range plan.Cells {
		pc := &plan.Cells[i]
		if pc.Digest == "" {
			if d, err := e.sys.CellDigestDriver(pc.Cell.Experiment, pc.Cell.Config, pc.Cell.Externals, pc.Cell.Driver); err == nil {
				pc.Digest = d
			}
		}
	}
}

// Run executes every cell unconditionally and returns the aggregated
// summary — ForceAll followed by RunPlan. Cell failures are reported
// per-outcome, not as an error: a broken cell is a meaningful campaign
// result. The returned error covers only systemic problems (no system,
// or the final matrix aggregation failing).
func (e *Engine) Run(cells []Cell) (*Summary, error) {
	return e.RunPlan(ForceAll(cells))
}

// RunPlan executes the plan's stale cells on the worker pool and
// publishes skip outcomes for the up-to-date ones.
func (e *Engine) RunPlan(plan *Plan) (*Summary, error) {
	return e.RunPlanContext(context.Background(), plan)
}

// RunPlanContext is RunPlan under a context: when the context is
// cancelled, cells already executing finish (their runs are recorded
// normally — a half-written campaign is worse than a slightly longer
// shutdown), cells not yet started report ctx.Err() in their outcome,
// and the summary is still aggregated over whatever was recorded. This
// is the daemon's clean-shutdown path.
func (e *Engine) RunPlanContext(ctx context.Context, plan *Plan) (*Summary, error) {
	if e.sys == nil {
		return nil, fmt.Errorf("campaign: engine has no system")
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	cells := make([]Cell, len(plan.Cells))
	for i, pc := range plan.Cells {
		cells[i] = pc.Cell
	}
	// Fill in missing digests now, before any cell executes: a migrate
	// cell's completion record must be keyed by the campaign-entry
	// input state (the state a later planner will recompute), not by
	// whatever revision earlier migrations have moved the repository to
	// by the time the cell starts. Plans from Engine.Plan and ForcePlan
	// already carry entry digests; bare ForceAll plans get theirs here.
	e.fillDigests(plan)
	outcomes := make([]Outcome, len(cells))
	done := make([]chan struct{}, len(cells))
	for i := range done {
		done[i] = make(chan struct{})
	}
	deps := dependencies(cells)

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range plan.Cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			pc := plan.Cells[i]
			if pc.Decision == DecisionSkip {
				outcomes[i] = Outcome{Cell: pc.Cell, RunID: pc.PriorRunID, Skipped: true, Passed: true}
				return
			}
			for _, d := range deps[i] {
				<-done[d]
			}
			select {
			case <-ctx.Done():
				outcomes[i] = Outcome{Cell: pc.Cell, Err: ctx.Err()}
				return
			case sem <- struct{}{}:
			}
			defer func() { <-sem }()
			// Re-check after possibly queuing behind busy workers: a
			// cancelled campaign must not start new cells.
			select {
			case <-ctx.Done():
				outcomes[i] = Outcome{Cell: pc.Cell, Err: ctx.Err()}
				return
			default:
			}
			outcomes[i] = e.runCell(pc)
		}(i)
	}
	wg.Wait()

	matrix, err := e.sys.Matrix()
	if err != nil {
		return nil, fmt.Errorf("campaign: aggregating matrix: %w", err)
	}
	return &Summary{
		Outcomes:  outcomes,
		Plan:      plan,
		Matrix:    matrix,
		TotalRuns: e.sys.Book.TotalRuns(),
	}, nil
}

// dependencies computes the per-experiment ordering barriers: a
// migration depends on every earlier same-experiment cell and becomes
// the barrier for every later one; a validation depends only on the
// latest barrier before it.
func dependencies(cells []Cell) [][]int {
	deps := make([][]int, len(cells))
	lastBarrier := make(map[string]int)
	sinceBarrier := make(map[string][]int)
	for i, c := range cells {
		if b, ok := lastBarrier[c.Experiment]; ok {
			deps[i] = append(deps[i], b)
		}
		if c.Mode == ModeMigrate {
			deps[i] = append(deps[i], sinceBarrier[c.Experiment]...)
			lastBarrier[c.Experiment] = i
			sinceBarrier[c.Experiment] = nil
		} else {
			sinceBarrier[c.Experiment] = append(sinceBarrier[c.Experiment], i)
		}
	}
	return deps
}

// runCell executes one planned cell. pc.Digest — the cell's input
// digest at campaign entry — keys the completion record of a migrate
// cell, letting a later planner recognize the same input state as
// already handled.
func (e *Engine) runCell(pc PlannedCell) Outcome {
	c := pc.Cell
	out := Outcome{Cell: c}
	tag := c.Tag
	if tag == "" {
		tag = fmt.Sprintf("campaign %s %s on %v", c.Mode, c.Experiment, c.Config)
	}
	switch c.Mode {
	case ModeMigrate:
		if c.Driver != "" {
			// Migrations patch the experiment's source until the suite is
			// green — repository surgery the in-process driver performs on
			// the system's own repo handle. Running that against a hosted
			// client would mutate shared state behind the seam.
			out.Err = fmt.Errorf("campaign: migration cells run on the platform driver, not %q", c.Driver)
			return out
		}
		rep, err := e.sys.MigrateExperiment(c.Experiment, c.Config, c.Externals, tag)
		if err != nil {
			out.Err = err
			if rep != nil {
				out.Report = rep
				out.RunID = rep.FinalRunID
				out.Runs = len(rep.Iterations)
			}
			return out
		}
		out.Report = rep
		out.RunID = rep.FinalRunID
		out.Runs = len(rep.Iterations)
		out.Passed = rep.Succeeded
		if pc.Digest != "" {
			if err := recordCellCompletion(e.sys.Store, pc.Digest, c, rep.FinalRunID, rep.Succeeded); err != nil {
				out.Err = fmt.Errorf("campaign: recording cell completion: %w", err)
			}
		}
	default:
		rec, err := e.sys.ValidateDriver(c.Driver, c.Experiment, c.Config, c.Externals, tag)
		if err != nil {
			out.Err = err
			return out
		}
		out.Record = rec
		out.RunID = rec.RunID
		out.Runs = 1
		out.Passed = rec.Passed()
	}
	return out
}

// MatrixPlan builds the standard campaign work matrix over experiments ×
// configurations × externals sets: for every externals set, a baseline
// validation of each experiment on the baseline configuration, then an
// adapt-and-validate migration of each experiment to every other
// configuration. This is the cell structure behind the paper's Figure 3.
func MatrixPlan(exps []string, baseline platform.Config, configs []platform.Config, extSets []*externals.Set) []Cell {
	var cells []Cell
	for _, exts := range extSets {
		for _, exp := range exps {
			cells = append(cells, Cell{
				Experiment: exp, Config: baseline, Externals: exts,
				Mode: ModeValidate, Tag: "baseline",
			})
		}
		for _, cfg := range configs {
			if cfg == baseline {
				continue
			}
			for _, exp := range exps {
				cells = append(cells, Cell{
					Experiment: exp, Config: cfg, Externals: exts,
					Mode: ModeMigrate, Tag: fmt.Sprintf("matrix %v", cfg),
				})
			}
		}
	}
	return cells
}
