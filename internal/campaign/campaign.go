// Package campaign is the concurrent campaign engine of the sp-system:
// it executes a work matrix of validation cells — experiments × platform
// configurations × external software sets — on a bounded worker pool and
// aggregates the per-cell outcomes into the bookkeeping matrix. This is
// how the paper's ">300 validation runs" campaign actually ran: many
// client machines working the matrix at once against one common storage,
// not one client grinding through it serially.
//
// # Worker-pool design
//
// Every cell becomes one job. Jobs start in submission order, run on at
// most Workers goroutines, and publish their outcome at their cell's
// index, so results are deterministic regardless of scheduling.
//
// Cells of *different* experiments never share mutable state — the
// store, runner, builder and clock are all thread-safe — so they run
// fully in parallel. Within one experiment the engine inserts ordering
// barriers: a migration cell mutates the experiment's software
// repository (interventions are source patches), so it waits for every
// earlier cell of that experiment and blocks every later one. Validation
// cells between two barriers only read the repository and therefore run
// concurrently with each other. The result is exactly the serial
// campaign's per-experiment history — same repository state before each
// migration, hence the same iterations, runs and matrix totals — with
// all the parallelism that is actually safe.
//
// # Build deduplication
//
// Concurrent cells frequently demand the same build (same repository
// revision, configuration and externals): every standalone-test client
// of an experiment needs the identical tar-balls. The builder
// (internal/buildsys) coalesces identical concurrent builds in a
// singleflight layer, so one worker compiles and the rest share its
// result; the engine simply rides on that. Run and job IDs stay unique
// under this parallelism because the ID counters are incremented
// atomically inside the common storage itself (storage.Increment).
package campaign

import (
	"fmt"
	"sync"

	"repro/internal/bookkeep"
	"repro/internal/core"
	"repro/internal/externals"
	"repro/internal/migrate"
	"repro/internal/platform"
	"repro/internal/runner"
)

// Mode selects what a cell does.
type Mode int

const (
	// ModeValidate runs one full validation (build + suite) of the cell.
	ModeValidate Mode = iota
	// ModeMigrate runs an adapt-and-validate migration campaign to the
	// cell's configuration, applying source interventions until the
	// suite is green or the iteration budget is exhausted.
	ModeMigrate
)

// String returns "validate" or "migrate".
func (m Mode) String() string {
	if m == ModeMigrate {
		return "migrate"
	}
	return "validate"
}

// Cell is one unit of campaign work: an experiment on a platform
// configuration with an externals set.
type Cell struct {
	Experiment string
	Config     platform.Config
	Externals  *externals.Set
	Mode       Mode
	// Tag describes the cell's runs in the bookkeeping.
	Tag string
}

// Outcome is the recorded result of one cell.
type Outcome struct {
	Cell Cell
	// RunID is the cell's final validation run.
	RunID string
	// Passed reports a green validation or a converged migration.
	Passed bool
	// Runs counts the validation runs the cell produced (a migration
	// produces one per iteration).
	Runs int
	// Record is the run record (ModeValidate).
	Record *runner.RunRecord
	// Report is the migration report (ModeMigrate).
	Report *migrate.Report
	// Err is set when the cell could not execute at all (unknown
	// experiment, invalid configuration); a failing-but-recorded run is
	// not an error.
	Err error
}

// Summary aggregates a campaign.
type Summary struct {
	// Outcomes holds one entry per submitted cell, in submission order.
	Outcomes []Outcome
	// Matrix is the bookkeeping status matrix after the campaign — the
	// paper's Figure 3 aggregation over the common storage.
	Matrix []bookkeep.Cell
	// TotalRuns is the number of validation runs recorded in the
	// bookkeeping after the campaign (including any pre-existing runs).
	TotalRuns int
}

// CampaignRuns sums the validation runs produced by this campaign's
// cells alone.
func (s *Summary) CampaignRuns() int {
	n := 0
	for _, o := range s.Outcomes {
		n += o.Runs
	}
	return n
}

// Failed counts cells that errored or did not end green.
func (s *Summary) Failed() int {
	n := 0
	for _, o := range s.Outcomes {
		if o.Err != nil || !o.Passed {
			n++
		}
	}
	return n
}

// Engine executes campaigns against one sp-system instance.
type Engine struct {
	sys *core.SPSystem
	// Workers bounds cell parallelism; values below 1 mean 1.
	Workers int
}

// New returns an Engine over the system with the given worker count.
func New(sys *core.SPSystem, workers int) *Engine {
	return &Engine{sys: sys, Workers: workers}
}

// Run executes every cell and returns the aggregated summary. Cell
// failures are reported per-outcome, not as an error: a broken cell is a
// meaningful campaign result. The returned error covers only systemic
// problems (no system, or the final matrix aggregation failing).
func (e *Engine) Run(cells []Cell) (*Summary, error) {
	if e.sys == nil {
		return nil, fmt.Errorf("campaign: engine has no system")
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	outcomes := make([]Outcome, len(cells))
	done := make([]chan struct{}, len(cells))
	for i := range done {
		done[i] = make(chan struct{})
	}
	deps := dependencies(cells)

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			for _, d := range deps[i] {
				<-done[d]
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = e.runCell(cells[i])
		}(i)
	}
	wg.Wait()

	matrix, err := e.sys.Matrix()
	if err != nil {
		return nil, fmt.Errorf("campaign: aggregating matrix: %w", err)
	}
	return &Summary{
		Outcomes:  outcomes,
		Matrix:    matrix,
		TotalRuns: e.sys.Book.TotalRuns(),
	}, nil
}

// dependencies computes the per-experiment ordering barriers: a
// migration depends on every earlier same-experiment cell and becomes
// the barrier for every later one; a validation depends only on the
// latest barrier before it.
func dependencies(cells []Cell) [][]int {
	deps := make([][]int, len(cells))
	lastBarrier := make(map[string]int)
	sinceBarrier := make(map[string][]int)
	for i, c := range cells {
		if b, ok := lastBarrier[c.Experiment]; ok {
			deps[i] = append(deps[i], b)
		}
		if c.Mode == ModeMigrate {
			deps[i] = append(deps[i], sinceBarrier[c.Experiment]...)
			lastBarrier[c.Experiment] = i
			sinceBarrier[c.Experiment] = nil
		} else {
			sinceBarrier[c.Experiment] = append(sinceBarrier[c.Experiment], i)
		}
	}
	return deps
}

// runCell executes one cell.
func (e *Engine) runCell(c Cell) Outcome {
	out := Outcome{Cell: c}
	tag := c.Tag
	if tag == "" {
		tag = fmt.Sprintf("campaign %s %s on %v", c.Mode, c.Experiment, c.Config)
	}
	switch c.Mode {
	case ModeMigrate:
		rep, err := e.sys.MigrateExperiment(c.Experiment, c.Config, c.Externals, tag)
		if err != nil {
			out.Err = err
			if rep != nil {
				out.Report = rep
				out.RunID = rep.FinalRunID
				out.Runs = len(rep.Iterations)
			}
			return out
		}
		out.Report = rep
		out.RunID = rep.FinalRunID
		out.Runs = len(rep.Iterations)
		out.Passed = rep.Succeeded
	default:
		rec, err := e.sys.Validate(c.Experiment, c.Config, c.Externals, tag)
		if err != nil {
			out.Err = err
			return out
		}
		out.Record = rec
		out.RunID = rec.RunID
		out.Runs = 1
		out.Passed = rec.Passed()
	}
	return out
}

// MatrixPlan builds the standard campaign work matrix over experiments ×
// configurations × externals sets: for every externals set, a baseline
// validation of each experiment on the baseline configuration, then an
// adapt-and-validate migration of each experiment to every other
// configuration. This is the cell structure behind the paper's Figure 3.
func MatrixPlan(exps []string, baseline platform.Config, configs []platform.Config, extSets []*externals.Set) []Cell {
	var cells []Cell
	for _, exts := range extSets {
		for _, exp := range exps {
			cells = append(cells, Cell{
				Experiment: exp, Config: baseline, Externals: exts,
				Mode: ModeValidate, Tag: "baseline",
			})
		}
		for _, cfg := range configs {
			if cfg == baseline {
				continue
			}
			for _, exp := range exps {
				cells = append(cells, Cell{
					Experiment: exp, Config: cfg, Externals: exts,
					Mode: ModeMigrate, Tag: fmt.Sprintf("matrix %v", cfg),
				})
			}
		}
	}
	return cells
}
