package campaign

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/storage"
)

// quietQueueOpts returns queue options suitable for in-process tests:
// instant polling and a fake clock.
func quietQueueOpts(t *testing.T, worker string, clk *fakeClock) QueueOptions {
	t.Helper()
	return QueueOptions{
		Worker: worker,
		TTL:    time.Minute,
		Poll:   time.Millisecond,
		Now:    clk.Now,
		Sleep:  func(time.Duration) {},
		OnEvent: func(format string, args ...interface{}) {
			t.Logf("["+worker+"] "+format, args...)
		},
	}
}

// greenRunsPerDigest counts green recorded runs keyed by input digest.
func greenRunsPerDigest(t *testing.T, store *storage.Store) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	for _, id := range runner.ListRuns(store) {
		rec, err := runner.LoadRun(store, id)
		if err != nil {
			t.Fatalf("run %s: %v", id, err)
		}
		if rec.Passed() && rec.InputDigest != "" {
			counts[rec.InputDigest]++
		}
	}
	return counts
}

// A single worker draining a plan is equivalent to RunPlanContext: all
// cells execute, leases end done, and a re-plan over the drained store
// plans zero cells.
func TestDrainPlanSingleWorker(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()
	sys := newSystemWith(t, store)
	eng := New(sys, 4)
	plan, err := eng.Plan(testCells(t, sys))
	if err != nil {
		t.Fatal(err)
	}
	wantRun := plan.RunCount()
	sum, stats, err := eng.DrainPlan(context.Background(), plan, quietQueueOpts(t, "solo", clk))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != wantRun || stats.PeerDone != 0 || stats.Stolen != 0 {
		t.Fatalf("stats %+v, want %d executed and no peers", stats, wantRun)
	}
	for i, o := range sum.Outcomes {
		if o.Err != nil || !o.Passed {
			t.Fatalf("cell %d: %+v", i, o)
		}
	}
	leases := LoadLeases(store)
	if len(leases) != wantRun {
		t.Fatalf("%d lease records, want %d", len(leases), wantRun)
	}
	lsum := SummarizeLeases(leases, clk.Now())
	if lsum.Done != wantRun || lsum.Held != 0 || lsum.Expired != 0 {
		t.Fatalf("lease summary %+v, want all done", lsum)
	}

	// The acceptance property: a fresh worker re-planning over the
	// drained store finds nothing to do.
	sys2 := newSystemWith(t, store)
	plan2, err := New(sys2, 1).Plan(testCells(t, sys2))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.RunCount() != 0 {
		t.Fatalf("re-plan over drained store: %d to run, want 0:\n%s", plan2.RunCount(), plan2.Render())
	}
}

// The distributed topology in miniature: two independent systems (own
// repos, own clocks) share one store and drain the same matrix
// concurrently. Every stale cell must execute exactly once across the
// two workers, with the lease claims deciding who.
func TestDrainPlanTwoWorkersNoDuplicates(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()

	sysA := newSystemWith(t, store)
	engA := New(sysA, 2)
	planA, err := engA.Plan(testCells(t, sysA))
	if err != nil {
		t.Fatal(err)
	}
	sysB := newSystemWith(t, store)
	engB := New(sysB, 2)
	planB, err := engB.Plan(testCells(t, sysB))
	if err != nil {
		t.Fatal(err)
	}
	// Both workers computed the same deterministic plan.
	if len(planA.Cells) != len(planB.Cells) || planA.RunCount() != planB.RunCount() {
		t.Fatalf("plans disagree: %d/%d cells, %d/%d to run",
			len(planA.Cells), len(planB.Cells), planA.RunCount(), planB.RunCount())
	}
	for i := range planA.Cells {
		if planA.Cells[i].Digest != planB.Cells[i].Digest {
			t.Fatalf("cell %d digest differs between workers", i)
		}
	}
	wantRun := planA.RunCount()

	var wg sync.WaitGroup
	statsCh := make(chan *QueueStats, 2)
	for _, w := range []struct {
		name string
		eng  *Engine
		plan *Plan
	}{{"worker-a", engA, planA}, {"worker-b", engB, planB}} {
		wg.Add(1)
		go func(name string, eng *Engine, plan *Plan) {
			defer wg.Done()
			_, stats, err := eng.DrainPlan(context.Background(), plan, quietQueueOpts(t, name, clk))
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			statsCh <- stats
		}(w.name, w.eng, w.plan)
	}
	wg.Wait()
	close(statsCh)

	executed, peerDone := 0, 0
	for st := range statsCh {
		executed += st.Executed
		peerDone += st.PeerDone
		if st.Lost != 0 {
			t.Fatalf("healthy drain lost a lease: %+v", st)
		}
	}
	if executed != wantRun {
		t.Fatalf("workers executed %d cells in total, want exactly %d (zero duplicates)", executed, wantRun)
	}
	if peerDone == 0 {
		t.Logf("note: one worker drained everything before the other claimed (legal, just unlucky)")
	}

	// No digest has more than one green run.
	for digest, n := range greenRunsPerDigest(t, store) {
		if n > 1 {
			t.Fatalf("digest %s has %d green runs, want 1", digest, n)
		}
	}
	lsum := SummarizeLeases(LoadLeases(store), clk.Now())
	if lsum.Done != wantRun || lsum.Held != 0 || lsum.Expired != 0 || lsum.Steals != 0 {
		t.Fatalf("lease summary %+v, want %d done and nothing else", lsum, wantRun)
	}

	// Drained store: both workers' systems re-plan to zero.
	for _, sys := range []struct {
		name string
	}{{"a"}, {"b"}} {
		fresh := newSystemWith(t, store)
		plan, err := New(fresh, 1).Plan(testCells(t, fresh))
		if err != nil {
			t.Fatal(err)
		}
		if plan.RunCount() != 0 {
			t.Fatalf("worker %s re-plan: %d to run, want 0:\n%s", sys.name, plan.RunCount(), plan.Render())
		}
	}
}

// Satellite: the crash/steal path end to end. Worker A claims a cell
// and dies mid-execution (its lease is held, never renewed, nothing
// recorded). The lease expires on the fake clock, worker B's drain
// steals the claim with a bumped fencing epoch and executes the cell,
// and the final store holds exactly one green run for the digest.
func TestDrainPlanStealsCrashedWorkersCell(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()

	// Worker A plans, claims the first stale cell... and crashes. The
	// direct manager claim stands in for the dead process: the lease
	// exists, renewals have stopped.
	sysA := newSystemWith(t, store)
	planA, err := New(sysA, 1).Plan(testCells(t, sysA))
	if err != nil {
		t.Fatal(err)
	}
	var victim PlannedCell
	for _, pc := range planA.Cells {
		if pc.Decision == DecisionRun && pc.Digest != "" {
			victim = pc
			break
		}
	}
	if victim.Digest == "" {
		t.Fatal("no stale digest-bearing cell to crash on")
	}
	mgrA := NewLeaseManager(store, "worker-a", time.Minute, clk.Now)
	if _, st, _, err := mgrA.Claim(victim.Digest, victim.Cell.Label()); err != nil || st != ClaimWon {
		t.Fatalf("crashing worker's claim: %v %v", st, err)
	}

	// While the lease is live, worker B's drain must leave the victim
	// cell alone: cancel after a bounded wait and check it stayed held.
	sysB := newSystemWith(t, store)
	engB := New(sysB, 2)
	planB, err := engB.Plan(testCells(t, sysB))
	if err != nil {
		t.Fatal(err)
	}
	// Migration barriers gate the victim's experiment: cells downstream
	// of the held cell can't run either, so compute the reachable count
	// instead of assuming RunCount()-1.
	blocked := map[int]bool{}
	{
		cellsB := make([]Cell, len(planB.Cells))
		for i, pc := range planB.Cells {
			cellsB[i] = pc.Cell
		}
		depsB := dependencies(cellsB)
		for i, pc := range planB.Cells {
			if pc.Digest == victim.Digest {
				blocked[i] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for i, ds := range depsB {
				if blocked[i] {
					continue
				}
				for _, d := range ds {
					if blocked[d] {
						blocked[i] = true
						changed = true
						break
					}
				}
			}
		}
	}
	blockedStale := 0
	for i, pc := range planB.Cells {
		if blocked[i] && pc.Decision == DecisionRun {
			blockedStale++
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := quietQueueOpts(t, "worker-b", clk)
	polls := 0
	var pollMu sync.Mutex
	opts.Sleep = func(d time.Duration) {
		if d != opts.Poll {
			return // renewal heartbeats share the seam; count idle polls only
		}
		pollMu.Lock()
		polls++
		stuck := polls > 2000
		pollMu.Unlock()
		if stuck {
			cancel() // the held cell is the only one left; stop waiting
		}
	}
	wantB := planB.RunCount() - blockedStale
	if _, stats, err := engB.DrainPlan(ctx, planB, opts); err != nil {
		t.Fatal(err)
	} else if stats.Executed != wantB {
		t.Fatalf("with a live foreign lease, worker B executed %d of %d cells, want %d (all but the held one and its dependents)",
			stats.Executed, planB.RunCount(), wantB)
	}
	if n := greenRunsPerDigest(t, store)[victim.Digest]; n != 0 {
		t.Fatalf("held cell was executed %d times while its lease was live", n)
	}
	cancel()

	// The crash surfaces: the deadline passes on the fake clock (no
	// sleeping), and a fresh drain steals and executes the cell.
	clk.Advance(2 * time.Minute)
	sysC := newSystemWith(t, store)
	engC := New(sysC, 2)
	planC, err := engC.Plan(testCells(t, sysC))
	if err != nil {
		t.Fatal(err)
	}
	if planC.RunCount() != blockedStale {
		t.Fatalf("after the partial drain, %d cells stale, want the crashed one plus its %d dependents:\n%s",
			planC.RunCount(), blockedStale-1, planC.Render())
	}
	_, stats, err := engC.DrainPlan(context.Background(), planC, quietQueueOpts(t, "worker-c", clk))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != blockedStale || stats.Stolen != 1 {
		t.Fatalf("steal drain stats %+v, want %d executed with exactly the crashed cell stolen", stats, blockedStale)
	}

	// Exactly one green run for the crashed cell's digest, and its
	// lease record carries the whole story: done, epoch 2, one steal,
	// completed by the thief.
	if n := greenRunsPerDigest(t, store)[victim.Digest]; n != 1 {
		t.Fatalf("digest of the crashed cell has %d green runs, want exactly 1", n)
	}
	var leaseRec *LeaseRecord
	for _, rec := range LoadLeases(store) {
		if rec.Digest == victim.Digest {
			r := rec
			leaseRec = &r
		}
	}
	if leaseRec == nil {
		t.Fatal("no lease record for the stolen cell")
	}
	if leaseRec.State != LeaseDone || leaseRec.Worker != "worker-c" || leaseRec.Epoch != 2 || leaseRec.Steals != 1 {
		t.Fatalf("stolen lease record %+v", leaseRec)
	}
}
