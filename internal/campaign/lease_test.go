package campaign

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// fakeClock is the lease tests' clock seam: expiry is driven by
// advancing it, never by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

const testDigest = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

// The lease lifecycle against one store: claim wins once, renewals keep
// a live holder safe, expiry lets a second worker steal with a bumped
// fencing epoch, and the stale holder's completion loses.
func TestLeaseClaimRenewExpireSteal(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()
	a := NewLeaseManager(store, "worker-a", time.Minute, clk.Now)
	b := NewLeaseManager(store, "worker-b", time.Minute, clk.Now)

	leaseA, st, rec, err := a.Claim(testDigest, "H1|SL5|CERNLIB")
	if err != nil || st != ClaimWon {
		t.Fatalf("first claim: status %v err %v", st, err)
	}
	if rec.Epoch != 1 || rec.Worker != "worker-a" || rec.State != LeaseHeld {
		t.Fatalf("claim record %+v", rec)
	}

	// While held and unexpired, every other claimant is busy.
	if _, st, rec, err := b.Claim(testDigest, "H1|SL5|CERNLIB"); err != nil || st != ClaimBusy || rec.Worker != "worker-a" {
		t.Fatalf("claim over live lease: status %v rec %+v err %v", st, rec, err)
	}

	// Renewals through 3×TTL keep the holder alive...
	for i := 0; i < 3; i++ {
		clk.Advance(45 * time.Second)
		if err := a.Renew(leaseA); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
		if _, st, _, _ := b.Claim(testDigest, "H1|SL5|CERNLIB"); st != ClaimBusy {
			t.Fatalf("renewed lease stolen at renewal %d", i)
		}
	}
	if leaseA.Record.Renews != 3 {
		t.Fatalf("renews %d, want 3", leaseA.Record.Renews)
	}

	// ...then the worker "crashes": no more renewals, deadline passes,
	// and the steal succeeds with a bumped epoch and steal count.
	clk.Advance(2 * time.Minute)
	leaseB, st, rec, err := b.Claim(testDigest, "H1|SL5|CERNLIB")
	if err != nil || st != ClaimWon {
		t.Fatalf("steal: status %v err %v", st, err)
	}
	if !leaseB.Stole || rec.Epoch != 2 || rec.Steals != 1 || rec.Worker != "worker-b" {
		t.Fatalf("steal record %+v stole=%v", rec, leaseB.Stole)
	}

	// The fencing epoch does its job: the zombie's renew and complete
	// both lose against the thief's record.
	if err := a.Renew(leaseA); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie renew: %v, want ErrLeaseLost", err)
	}
	if err := a.Complete(leaseA, "run-0001", true); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie complete: %v, want ErrLeaseLost", err)
	}

	// The thief completes; from then on the cell is done for everyone.
	if err := b.Complete(leaseB, "run-0002", true); err != nil {
		t.Fatalf("thief complete: %v", err)
	}
	if _, st, rec, _ := a.Claim(testDigest, "H1|SL5|CERNLIB"); st != ClaimDone || rec.RunID != "run-0002" || !rec.Passed {
		t.Fatalf("claim after done: status %v rec %+v", st, rec)
	}
}

// A released lease is immediately claimable — no expiry wait — which is
// what keeps clean worker shutdown from stalling the queue.
func TestLeaseReleaseReclaim(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()
	a := NewLeaseManager(store, "worker-a", time.Minute, clk.Now)
	b := NewLeaseManager(store, "worker-b", time.Minute, clk.Now)

	leaseA, st, _, err := a.Claim(testDigest, "cell")
	if err != nil || st != ClaimWon {
		t.Fatalf("claim: %v %v", st, err)
	}
	if err := a.Release(leaseA); err != nil {
		t.Fatalf("release: %v", err)
	}
	// No clock advance: claimable right now, epoch fencing continues,
	// and a voluntary hand-back is not a steal.
	leaseB, st, rec, err := b.Claim(testDigest, "cell")
	if err != nil || st != ClaimWon {
		t.Fatalf("re-claim after release: %v %v", st, err)
	}
	if leaseB.Stole || rec.Epoch != 2 || rec.Steals != 0 {
		t.Fatalf("re-claim record %+v stole=%v", rec, leaseB.Stole)
	}
}

// Concurrent claims over one digest: exactly one winner, everyone else
// busy — the CAS race decided inside the backend.
func TestLeaseClaimRace(t *testing.T) {
	store := storage.NewStore()
	clk := newFakeClock()
	const racers = 12
	var wg sync.WaitGroup
	wins := make(chan string, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := NewLeaseManager(store, string(rune('a'+i)), time.Minute, clk.Now)
			_, st, _, err := m.Claim(testDigest, "cell")
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
			}
			if st == ClaimWon {
				wins <- string(rune('a' + i))
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d racers won one lease, want exactly 1", n)
	}
}

// SummarizeLeases folds records into the /healthz counters, judging
// expiry against the supplied instant.
func TestSummarizeLeases(t *testing.T) {
	clk := newFakeClock()
	now := clk.Now()
	recs := []LeaseRecord{
		{State: LeaseHeld, Worker: "a", Deadline: now.Add(time.Minute).Unix()},
		{State: LeaseHeld, Worker: "b", Deadline: now.Add(-time.Minute).Unix(), Steals: 1},
		{State: LeaseDone, Worker: "a", Steals: 2},
		{State: LeaseDone, Worker: "c"},
		{State: LeaseReleased, Worker: "b"},
	}
	sum := SummarizeLeases(recs, now)
	want := LeaseSummary{Held: 1, Expired: 1, Done: 2, Released: 1, Steals: 3,
		Workers: map[string]int{"a": 1, "c": 1}}
	if sum.Held != want.Held || sum.Expired != want.Expired || sum.Done != want.Done ||
		sum.Released != want.Released || sum.Steals != want.Steals ||
		sum.Workers["a"] != 1 || sum.Workers["c"] != 1 || sum.Total() != 5 {
		t.Fatalf("summary %+v, want %+v", sum, want)
	}
}
