package campaign

import (
	"testing"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/valtest"
	"repro/internal/vmhost"
)

// goldenDigests are cell input digests captured on the pre-driver-seam
// code (before valtest.Driver existed), at the campaign test scale with
// the standard externals set. The driver seam must not move any of
// them: a recorded green cell in an existing archive has to keep
// satisfying the planner, or every deployed store re-runs its whole
// matrix after an upgrade. If a change here is intentional it is a
// breaking archive event and needs a migration story, not a new golden
// value.
var goldenDigests = []struct {
	experiment string
	config     platform.Config
	digest     string
}{
	{"H1", platform.OriginalConfig(), "2b92bbb284c85f2ecb58dcb56e0a421421373457c7ea52d710e4531f65dbbc24"},
	{"H1", platform.ReferenceConfig(), "e877dbed484e619eb35548c0e231a6a87e80ace6b1033a777de866a347b8e381"},
	{"HERMES", platform.OriginalConfig(), "9869815971be5e1d80e4a7509aef16eb9bf562b45cdac16d56b6a1d06b3a73d5"},
	{"HERMES", platform.ReferenceConfig(), "51c430a3ca1eb09da53eb28c0ece68cb1332ff3aca237b912f846198a19df29e"},
	{"ZEUS", platform.OriginalConfig(), "f3971896470903f7836a6c4ed6f5f9fe224e0583e27ba58d4727f1248fbc7d0c"},
	{"ZEUS", platform.ReferenceConfig(), "4febbcdcfb0c2b0a88c3da370094bef0bb49b087429986c1bf0bde13bfa2d913"},
}

func TestCellDigestsMatchPreSeamGoldens(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	for _, g := range goldenDigests {
		got, err := sys.CellDigest(g.experiment, g.config, exts)
		if err != nil {
			t.Fatal(err)
		}
		if got != g.digest {
			t.Errorf("%s | %s: digest drifted\n got %s\nwant %s\nevery recorded cell in existing archives is now stale",
				g.experiment, g.config, got, g.digest)
		}
	}
}

// TestDriverCellDigests: a cell bound to the default driver (empty or
// explicit platform name) digests exactly like a pre-seam cell; any
// other driver digests differently, and distinctly per driver.
func TestDriverCellDigests(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	cfg := platform.OriginalConfig()
	base, err := sys.CellDigest("H1", cfg, exts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"": base}
	for _, name := range []string{"", valtest.DefaultDriverName} {
		d, err := sys.CellDigestDriver("H1", cfg, exts, name)
		if err != nil {
			t.Fatal(err)
		}
		if d != base {
			t.Errorf("driver %q digest %s, want pre-seam value %s", name, d, base)
		}
	}
	for _, name := range []string{vmhost.DriverName, "fault(platform)"} {
		d, err := sys.CellDigestDriver("H1", cfg, exts, name)
		if err != nil {
			t.Fatal(err)
		}
		for prev, pd := range seen {
			if d == pd {
				t.Errorf("driver %q digest collides with driver %q", name, prev)
			}
		}
		seen[name] = d
	}
}

// TestPlanZeroCellsAfterSeam is the acceptance property: a full
// campaign recorded through the new seam (on the default driver) plans
// zero cells on re-planning — digest stability end to end, not just at
// the digest function.
func TestPlanZeroCellsAfterSeam(t *testing.T) {
	store := storage.NewStore()
	seeder := newSystemWith(t, store)
	exts := stdSet(t, seeder)
	baseline, targets := testConfigs()
	cells := MatrixPlan(seeder.Experiments(), baseline,
		append([]platform.Config{baseline}, targets...), []*externals.Set{exts})
	if _, err := New(seeder, 4).Run(cells); err != nil {
		t.Fatal(err)
	}
	// Re-plan as a fresh process over the unchanged store, the way each
	// spd cycle does.
	plan, err := New(newSystemWith(t, store), 4).Plan(cells)
	if err != nil {
		t.Fatal(err)
	}
	if n := plan.RunCount(); n != 0 {
		t.Fatalf("re-plan over a freshly recorded campaign wants to run %d cells, want 0:\n%s", n, plan.Render())
	}
}

// TestCampaignCellOnVMHostDriver: a driver-bound cell plans stale even
// when the same cell is green on the platform driver, runs on its
// driver, and then plans clean — while leaving the platform cell's
// bookkeeping untouched.
func TestCampaignCellOnVMHostDriver(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	cfg := platform.ReferenceConfig()
	plat := Cell{Experiment: "H1", Config: cfg, Externals: exts, Mode: ModeValidate}
	hosted := plat
	hosted.Driver = vmhost.DriverName

	eng := New(sys, 2)
	if _, err := eng.Run([]Cell{plat}); err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Plan([]Cell{plat, hosted})
	if err != nil {
		t.Fatal(err)
	}
	if plan.RunCount() != 1 {
		t.Fatalf("want only the vmhost cell stale, plan:\n%s", plan.Render())
	}
	if _, err := eng.Run([]Cell{hosted}); err != nil {
		t.Fatal(err)
	}
	plan, err = eng.Plan([]Cell{plat, hosted})
	if err != nil {
		t.Fatal(err)
	}
	if plan.RunCount() != 0 {
		t.Fatalf("both cells recorded, plan still wants %d:\n%s", plan.RunCount(), plan.Render())
	}
}

// TestMigrationRejectsDriverBinding: migrations patch the system's own
// repositories and must stay on the platform driver.
func TestMigrationRejectsDriverBinding(t *testing.T) {
	sys := newSystem(t)
	exts := stdSet(t, sys)
	_, targets := testConfigs()
	cell := Cell{
		Experiment: "H1", Config: targets[0], Externals: exts,
		Mode: ModeMigrate, Driver: vmhost.DriverName,
	}
	sum, err := New(sys, 1).Run([]Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Outcomes) != 1 || sum.Outcomes[0].Err == nil {
		t.Fatalf("driver-bound migration cell did not error: %+v", sum.Outcomes)
	}
}
