// Cell leases: the coordination layer that turns a recorded plan into a
// distributed work queue. A lease is a small JSON record in the plan
// namespace, keyed by the cell's input digest, that says "this worker
// is executing this cell until this deadline". Workers claim leases
// with the store's compare-and-swap primitive, renew them while the
// cell runs, and mark them done when the result is recorded — so any
// number of spd processes (local or `-worker` over HTTP) can chew on
// the same plan without executing a cell twice.
//
// Crash safety comes from expiry plus idempotence, not from the lease
// being authoritative: a worker that dies mid-cell simply stops
// renewing, the deadline passes, and another worker steals the claim
// (bumping the fencing epoch) and re-executes. The input-digest
// machinery makes that re-execution safe — the store is append-only
// and a duplicated green run for the same digest is redundant, never
// wrong. Clock reads go through an injected now() (cron.Wall in
// production), so expiry is tested with a fake clock instead of sleep.
package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/storage"
)

// LeaseKeyPrefix prefixes every lease record's key in PlanNS. Digest
// keys are bare hex, so the prefix keeps leases disjoint from the
// migration completion records sharing the namespace.
const LeaseKeyPrefix = "lease/"

// Lease states.
const (
	// LeaseHeld marks a live claim: the worker named in the record is
	// executing the cell and renewing the deadline.
	LeaseHeld = "held"
	// LeaseDone marks a completed cell: the result is recorded and the
	// cell must never be claimed again within this plan's lifetime.
	LeaseDone = "done"
	// LeaseReleased marks a voluntary hand-back (clean shutdown between
	// claim and execution): immediately claimable by anyone.
	LeaseReleased = "released"
)

// LeaseRecord is the durable JSON form of one cell lease.
type LeaseRecord struct {
	// Digest is the cell's input digest — the queue identity the lease
	// key is derived from.
	Digest string `json:"digest"`
	// Cell is the cell's human-readable CellKey label.
	Cell string `json:"cell"`
	// Worker identifies the current (or last) holder.
	Worker string `json:"worker"`
	// Epoch is the fencing counter: every successful claim — first
	// claim, re-claim after release, steal after expiry — increments it,
	// so a stale holder's completion attempt (CAS over the old record)
	// loses against the thief's newer epoch.
	Epoch int `json:"epoch"`
	// Deadline is the unix second the claim expires at unless renewed.
	Deadline int64 `json:"deadline"`
	// State is LeaseHeld, LeaseDone or LeaseReleased.
	State string `json:"state"`
	// RunID is the final run recorded for the cell (LeaseDone only).
	RunID string `json:"run_id,omitempty"`
	// Passed reports the cell's verdict (LeaseDone only).
	Passed bool `json:"passed,omitempty"`
	// Steals counts expiry take-overs across the lease's lifetime.
	Steals int `json:"steals"`
	// Renews counts deadline extensions across the lease's lifetime.
	Renews int `json:"renews"`
}

// Expired reports whether a held lease's deadline has passed.
func (r *LeaseRecord) Expired(now time.Time) bool {
	return r.State == LeaseHeld && now.Unix() >= r.Deadline
}

// LeaseKey returns the PlanNS key of the digest's lease record.
func LeaseKey(digest string) string { return LeaseKeyPrefix + digest }

// Lease is one successfully claimed cell: the record this worker wrote
// plus the bound hash its next CAS must expect. Renew, Complete and
// Release serialize on the lease's own mutex, so the executor's renewal
// heartbeat and its completion never race each other's CAS.
type Lease struct {
	Record LeaseRecord
	// Stole reports that this claim took over an expired lease rather
	// than an unclaimed or released cell.
	Stole bool
	mu    sync.Mutex // guards Record and hash after the claim
	hash  string
}

// ClaimStatus is the outcome of a claim attempt.
type ClaimStatus int

const (
	// ClaimWon: the caller holds the lease and must execute the cell.
	ClaimWon ClaimStatus = iota
	// ClaimBusy: another worker holds an unexpired lease (or won a
	// concurrent race); try again after the deadline or a refresh.
	ClaimBusy
	// ClaimDone: the cell was already executed; the returned record
	// carries the run ID and verdict.
	ClaimDone
)

// ErrLeaseLost is returned by Renew and Complete when the caller's
// claim was stolen out from under it — its deadline expired and another
// worker's epoch superseded it. The holder's in-flight work is not
// harmed (runs are append-only and digest-deduplicated); it just no
// longer owns the cell's verdict.
var ErrLeaseLost = fmt.Errorf("campaign: lease lost to a newer epoch")

// LeaseManager claims, renews and completes cell leases for one worker
// over one store. It is safe for concurrent use by the worker's cell
// goroutines (all state lives in the store).
type LeaseManager struct {
	store  *storage.Store
	worker string
	ttl    time.Duration
	now    func() time.Time
}

// NewLeaseManager returns a manager claiming leases as worker with the
// given TTL. now is the clock seam; nil means the wall clock
// (cron.Wall) — tests pass a fake to drive expiry without sleeping.
func NewLeaseManager(store *storage.Store, worker string, ttl time.Duration, now func() time.Time) *LeaseManager {
	if now == nil {
		now = cron.Wall()
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &LeaseManager{store: store, worker: worker, ttl: ttl, now: now}
}

// DefaultLeaseTTL is the lease deadline horizon when the caller does
// not choose one: long enough that a healthy worker renewing at TTL/3
// never expires, short enough that a crashed worker's cells are
// reassigned within a cycle.
const DefaultLeaseTTL = 2 * time.Minute

// TTL returns the manager's lease horizon.
func (m *LeaseManager) TTL() time.Duration { return m.ttl }

// Claim attempts to take the lease for a cell. The decision — is the
// current record absent, released, expired, done, or live — and the
// write are made atomic by CAS'ing over the exact record hash the
// decision read; any concurrent claimant observing the same state loses
// the swap and reports ClaimBusy.
func (m *LeaseManager) Claim(digest, cellLabel string) (*Lease, ClaimStatus, LeaseRecord, error) {
	key := LeaseKey(digest)
	prior, priorHash := m.loadLease(key)
	rec := LeaseRecord{
		Digest:   digest,
		Cell:     cellLabel,
		Worker:   m.worker,
		Epoch:    1,
		Deadline: m.now().Add(m.ttl).Unix(),
		State:    LeaseHeld,
	}
	stole := false
	if prior != nil {
		switch {
		case prior.State == LeaseDone:
			return nil, ClaimDone, *prior, nil
		case prior.State == LeaseHeld && !prior.Expired(m.now()):
			return nil, ClaimBusy, *prior, nil
		}
		rec.Epoch = prior.Epoch + 1
		rec.Steals = prior.Steals
		rec.Renews = prior.Renews
		if prior.Expired(m.now()) {
			rec.Steals++
			stole = true
		}
	}
	hash, swapped, err := m.swap(key, priorHash, rec)
	if err != nil {
		return nil, ClaimBusy, LeaseRecord{}, err
	}
	if !swapped {
		// Lost the race; whoever won holds it now.
		return nil, ClaimBusy, rec, nil
	}
	return &Lease{Record: rec, Stole: stole, hash: hash}, ClaimWon, rec, nil
}

// Renew extends the caller's deadline by one TTL. ErrLeaseLost means
// the claim was stolen (or otherwise superseded); the caller should
// stop treating the cell as its own. Renewing a lease that has already
// been completed or released is a no-op, so a heartbeat that fires in
// the instant between the cell finishing and its goroutine stopping
// cannot resurrect a finished claim.
func (m *LeaseManager) Renew(l *Lease) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Record.State != LeaseHeld {
		return nil
	}
	rec := l.Record
	rec.Deadline = m.now().Add(m.ttl).Unix()
	rec.Renews++
	return m.replaceLocked(l, rec)
}

// Complete marks the caller's lease done, binding the cell's verdict to
// the queue. ErrLeaseLost means a thief's epoch superseded ours; the
// thief's verdict stands and ours is redundant (the run records behind
// both are in the store either way).
func (m *LeaseManager) Complete(l *Lease, runID string, passed bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := l.Record
	rec.State = LeaseDone
	rec.RunID = runID
	rec.Passed = passed
	return m.replaceLocked(l, rec)
}

// Release voluntarily hands the lease back (clean shutdown before the
// cell started executing): the record goes LeaseReleased and any worker
// may re-claim it immediately, no expiry wait.
func (m *LeaseManager) Release(l *Lease) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := l.Record
	rec.State = LeaseReleased
	return m.replaceLocked(l, rec)
}

// replaceLocked CAS'es the caller's lease record for rec, failing with
// ErrLeaseLost when the stored record is no longer the caller's. The
// caller holds l.mu.
func (m *LeaseManager) replaceLocked(l *Lease, rec LeaseRecord) error {
	hash, swapped, err := m.swap(LeaseKey(l.Record.Digest), l.hash, rec)
	if err != nil {
		return err
	}
	if !swapped {
		return ErrLeaseLost
	}
	l.Record = rec
	l.hash = hash
	return nil
}

// swap writes rec conditioned on the key still binding oldHash.
func (m *LeaseManager) swap(key, oldHash string, rec LeaseRecord) (string, bool, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return "", false, err
	}
	return m.store.CompareAndSwap(PlanNS, key, oldHash, data)
}

// loadLease reads the current lease record and its bound hash. An
// unreadable or undecodable record reads as absent — the CAS over its
// actual hash keeps the claim atomic regardless, and treating
// corruption as claimable keeps one bad blob from wedging the queue.
func (m *LeaseManager) loadLease(key string) (*LeaseRecord, string) {
	hash, err := m.store.Hash(PlanNS, key)
	if err != nil {
		return nil, ""
	}
	data, err := m.store.Get(PlanNS, key)
	if err != nil {
		return nil, hash
	}
	var rec LeaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, hash
	}
	return &rec, hash
}

// LoadLeases returns every lease record in the store, sorted by cell
// label — the read side /healthz and `spsys store leases` derive their
// distributed-progress views from, with no coordination state beyond
// the records themselves.
func LoadLeases(store *storage.Store) []LeaseRecord {
	var out []LeaseRecord
	for _, key := range store.List(PlanNS) {
		if !strings.HasPrefix(key, LeaseKeyPrefix) {
			continue
		}
		data, err := store.Get(PlanNS, key)
		if err != nil {
			continue
		}
		var rec LeaseRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// LeaseSummary aggregates the lease records into the counters operators
// watch during a distributed campaign.
type LeaseSummary struct {
	// Held counts live unexpired claims.
	Held int `json:"held"`
	// Expired counts held claims past their deadline — cells whose
	// worker presumably died, waiting to be stolen.
	Expired int `json:"expired"`
	// Done counts completed cells.
	Done int `json:"done"`
	// Released counts voluntarily handed-back claims.
	Released int `json:"released"`
	// Steals sums expiry take-overs across all leases.
	Steals int `json:"steals"`
	// Workers maps worker ID to cells completed by it.
	Workers map[string]int `json:"workers,omitempty"`
}

// Total returns the number of lease records summarized.
func (s LeaseSummary) Total() int { return s.Held + s.Expired + s.Done + s.Released }

// SummarizeLeases folds lease records into the operator counters.
// Expiry is judged against the supplied instant.
func SummarizeLeases(recs []LeaseRecord, now time.Time) LeaseSummary {
	sum := LeaseSummary{}
	for _, r := range recs {
		sum.Steals += r.Steals
		switch {
		case r.State == LeaseDone:
			sum.Done++
			if sum.Workers == nil {
				sum.Workers = make(map[string]int)
			}
			sum.Workers[r.Worker]++
		case r.State == LeaseReleased:
			sum.Released++
		case r.Expired(now):
			sum.Expired++
		default:
			sum.Held++
		}
	}
	return sum
}
