package campaign

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// testCells returns the test-scale desired matrix for the system.
func testCells(t *testing.T, sys *core.SPSystem) []Cell {
	t.Helper()
	exts := stdSet(t, sys)
	baseline, targets := testConfigs()
	return MatrixPlan(sys.Experiments(), baseline,
		append([]platform.Config{baseline}, targets...), []*externals.Set{exts})
}

// seedStore runs the full test matrix onto the store through the
// plan/execute path and returns the resulting matrix text and run count.
func seedStore(t *testing.T, store *storage.Store) (matrixText string, totalRuns int) {
	t.Helper()
	sys := newSystemWith(t, store)
	eng := New(sys, 4)
	plan, err := eng.Plan(testCells(t, sys))
	if err != nil {
		t.Fatal(err)
	}
	if plan.SkipCount() != 0 {
		t.Fatalf("empty store: %d cells skipped, want 0", plan.SkipCount())
	}
	sum, err := eng.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range sum.Outcomes {
		if o.Err != nil || !o.Passed {
			t.Fatalf("seed cell %d failed: %+v", i, o)
		}
	}
	return report.TextMatrix(sum.Matrix), sum.TotalRuns
}

// TestIncrementalRecampaignPlansZeroCells is the acceptance property of
// the plan/execute split: after a full campaign, a fresh
// process-equivalent re-campaign over the unchanged store — under any
// permutation of the same desired matrix and any worker count — plans
// zero cells, executes zero builds and zero runs, and leaves the
// rendered Figure 3 matrix byte-identical.
func TestIncrementalRecampaignPlansZeroCells(t *testing.T) {
	store := storage.NewStore()
	wantMatrix, wantRuns := seedStore(t, store)
	wantStats := store.Stats()

	for seed := int64(0); seed < 5; seed++ {
		sys := newSystemWith(t, store)
		cells := testCells(t, sys)
		if seed > 0 {
			rand.New(rand.NewSource(seed)).Shuffle(len(cells), func(i, j int) {
				cells[i], cells[j] = cells[j], cells[i]
			})
		}
		eng := New(sys, 1+int(seed)%4)
		plan, err := eng.Plan(cells)
		if err != nil {
			t.Fatal(err)
		}
		if plan.RunCount() != 0 || plan.SkipCount() != len(cells) {
			t.Fatalf("seed %d: plan runs %d cells, skips %d, want all-skip:\n%s",
				seed, plan.RunCount(), plan.SkipCount(), plan.Render())
		}
		for _, pc := range plan.Cells {
			if pc.PriorRunID == "" || !strings.Contains(pc.Reason, "up-to-date") {
				t.Fatalf("seed %d: skip without provenance: %+v", seed, pc)
			}
		}
		sum, err := eng.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		if sum.CampaignRuns() != 0 || sum.Skipped() != len(cells) || sum.TotalRuns != wantRuns {
			t.Fatalf("seed %d: re-campaign executed work: campaign runs=%d skipped=%d total=%d (want 0/%d/%d)",
				seed, sum.CampaignRuns(), sum.Skipped(), sum.TotalRuns, len(cells), wantRuns)
		}
		if got := report.TextMatrix(sum.Matrix); got != wantMatrix {
			t.Fatalf("seed %d: matrix changed after all-skip campaign:\n got:\n%s\nwant:\n%s", seed, got, wantMatrix)
		}
		// Zero builds and zero records: the store must be untouched —
		// no new blobs (a build would store tarballs), no new bindings
		// (a run would store records and environments).
		if got := store.Stats(); got != wantStats {
			t.Fatalf("seed %d: store changed under all-skip campaign: %+v -> %+v", seed, wantStats, got)
		}
	}
}

// bumpRevision applies a minimal patch to the experiment's repository,
// moving its revision without touching any other input.
func bumpRevision(t *testing.T, sys *core.SPSystem, experiment string) {
	t.Helper()
	st, err := sys.Experiment(experiment)
	if err != nil {
		t.Fatal(err)
	}
	pkg := st.Repo.Packages()[0]
	if err := st.Repo.Apply(swrepo.Patch{
		ID:      "test-bump",
		Package: pkg.Name,
		Unit:    pkg.Units[0].Name,
		Add:     []platform.Trait{platform.TraitCxx11},
		Note:    "revision bump for incremental re-planning test",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRevisionBumpReplansOnlyThatExperiment is the planner's
// selectivity regression test: after one experiment's software moves,
// exactly that experiment's cells are stale and every other
// experiment's cells still skip.
func TestRevisionBumpReplansOnlyThatExperiment(t *testing.T) {
	store := storage.NewStore()
	seedStore(t, store)

	sys := newSystemWith(t, store)
	cells := testCells(t, sys)
	bumpRevision(t, sys, "H1")

	plan, err := New(sys, 4).Plan(cells)
	if err != nil {
		t.Fatal(err)
	}
	var h1Run, otherRun, h1Total int
	for _, pc := range plan.Cells {
		if pc.Cell.Experiment == "H1" {
			h1Total++
			if pc.Decision == DecisionRun {
				h1Run++
			}
		} else if pc.Decision == DecisionRun {
			otherRun++
		}
	}
	if otherRun != 0 {
		t.Fatalf("bumping H1 re-planned %d cells of other experiments:\n%s", otherRun, plan.Render())
	}
	if h1Run != h1Total || h1Total == 0 {
		t.Fatalf("bumping H1 re-planned %d of its %d cells, want all:\n%s", h1Run, h1Total, plan.Render())
	}
}

// TestLegacyRecordWithoutDigestIsStale pins the backward-compatibility
// contract: a pre-digest run record (no input_digest field) decodes
// fine, appears in the bookkeeping, but never satisfies a skip — the
// planner treats it as always-stale.
func TestLegacyRecordWithoutDigestIsStale(t *testing.T) {
	store := storage.NewStore()
	cfg := platform.OriginalConfig()

	// A green legacy record for the exact cell the plan will contain.
	sys := newSystemWith(t, store)
	exts := stdSet(t, sys)
	legacy := &runner.RunRecord{
		RunID:        "run-0001",
		Description:  "pre-digest baseline",
		Experiment:   "H1",
		Config:       cfg.String(),
		Externals:    exts.String(),
		RepoRevision: 1,
		Jobs: []runner.JobRecord{{
			JobID: "job-000001", RunID: "run-0001",
			Result: valtest.Result{Test: "t1", Outcome: valtest.OutcomePass},
		}},
	}
	data, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "input_digest") {
		t.Fatalf("legacy fixture carries a digest: %s", data)
	}
	if _, err := store.Put(runner.RunsNS, legacy.RunID, data); err != nil {
		t.Fatal(err)
	}
	// Keep the mint sequence ahead of the hand-written ID.
	if _, err := store.Increment("meta", "runseq"); err != nil {
		t.Fatal(err)
	}

	cell := Cell{Experiment: "H1", Config: cfg, Externals: exts, Mode: ModeValidate}
	plan, err := New(sys, 1).Plan([]Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	pc := plan.Cells[0]
	if pc.Decision != DecisionRun {
		t.Fatalf("legacy green record satisfied a skip: %+v", pc)
	}
	if !strings.Contains(pc.Reason, "inputs changed since run-0001") {
		t.Fatalf("stale reason does not cite the legacy record: %q", pc.Reason)
	}
}

// TestPlanRecordRoundTrip checks the durable plan record a campaign
// leaves for read-side consumers.
func TestPlanRecordRoundTrip(t *testing.T) {
	store := storage.NewStore()
	if rec, err := LoadLatestPlan(store); err != nil || rec != nil {
		t.Fatalf("empty store: plan=%v err=%v, want nil/nil", rec, err)
	}
	sys := newSystemWith(t, store)
	cells := testCells(t, sys)
	plan, err := New(sys, 2).Plan(cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Store(store); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadLatestPlan(store)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Cells) != len(cells) || rec.Runs != plan.RunCount() || rec.Skips != plan.SkipCount() {
		t.Fatalf("plan record does not round-trip: %+v", rec)
	}
	for i, c := range rec.Cells {
		if c.Decision != plan.Cells[i].Decision.String() || c.Experiment != plan.Cells[i].Cell.Experiment {
			t.Fatalf("cell %d diverges: %+v vs %+v", i, c, plan.Cells[i])
		}
	}
}

// TestRunPlanContextCancelled checks the daemon's shutdown contract at
// the engine level: with the context already cancelled, no cell starts,
// every outcome reports the cancellation, and nothing is recorded.
func TestRunPlanContextCancelled(t *testing.T) {
	store := storage.NewStore()
	sys := newSystemWith(t, store)
	cells := testCells(t, sys)
	eng := New(sys, 2)
	plan, err := eng.Plan(cells)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := eng.RunPlanContext(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range sum.Outcomes {
		if o.Err != context.Canceled {
			t.Fatalf("cell %d: err=%v, want context.Canceled", i, o.Err)
		}
	}
	if sum.TotalRuns != 0 || sum.CampaignRuns() != 0 {
		t.Fatalf("cancelled campaign recorded runs: %d/%d", sum.CampaignRuns(), sum.TotalRuns)
	}
}

// TestPlanRenderShape spot-checks the -dry-run listing.
func TestPlanRenderShape(t *testing.T) {
	store := storage.NewStore()
	seedStore(t, store)
	sys := newSystemWith(t, store)
	cells := testCells(t, sys)
	bumpRevision(t, sys, "ZEUS")
	plan, err := New(sys, 1).Plan(cells)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Render()
	for _, want := range []string{"DECISION", "REASON", "up-to-date", "stale", "skip", "run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan rendering missing %q:\n%s", want, out)
		}
	}
}
