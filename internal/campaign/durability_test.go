package campaign

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bookkeep"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/storage"
)

// newSystemWith is newSystem over an explicit common storage.
func newSystemWith(t *testing.T, store *storage.Store) *core.SPSystem {
	t.Helper()
	sys := core.NewWith(store, platform.NewRegistry())
	for _, def := range experiments.All() {
		if err := sys.RegisterExperiment(scaled(def)); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// runSmallCampaign executes a baseline + one-migration matrix against
// the system and returns its matrix cells and rendered text matrix. The
// cells run strictly serially through the core (not the engine, whose
// goroutines may acquire work in scheduler-dependent order), so two
// executions over different backends record byte-identical bookkeeping,
// run IDs and timestamps included.
func runSmallCampaign(t *testing.T, sys *core.SPSystem) ([]bookkeep.Cell, string) {
	t.Helper()
	exts := stdSet(t, sys)
	baseline, targets := testConfigs()
	cells := MatrixPlan(sys.Experiments(), baseline,
		append([]platform.Config{baseline}, targets[1:]...), []*externals.Set{exts})
	for i, c := range cells {
		switch c.Mode {
		case ModeMigrate:
			if _, err := sys.MigrateExperiment(c.Experiment, c.Config, c.Externals, c.Tag); err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
		default:
			if _, err := sys.Validate(c.Experiment, c.Config, c.Externals, c.Tag); err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
		}
	}
	matrix, err := sys.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	return matrix, report.TextMatrix(matrix)
}

// TestCampaignDurabilityRoundTrip is the long-term-preservation
// round-trip: run a campaign onto the disk backend, close the store,
// reopen the directory in a fresh store, and require the bookkeeping
// cells and the rendered Figure 3 matrix to be byte-identical to the
// pre-close state — and identical to the in-memory path for the same
// inputs, since backend choice may never change what is recorded.
func TestCampaignDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	disk, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	diskCells, diskMatrix := runSmallCampaign(t, newSystemWith(t, disk))
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// Same inputs through the in-memory backend.
	memCells, memMatrix := runSmallCampaign(t, newSystemWith(t, storage.NewStore()))
	if memMatrix != diskMatrix {
		t.Fatalf("disk and memory campaigns rendered different matrices:\ndisk:\n%s\nmemory:\n%s", diskMatrix, memMatrix)
	}
	if !reflect.DeepEqual(memCells, diskCells) {
		t.Fatal("disk and memory campaigns recorded different bookkeeping cells")
	}

	// Fresh process over the same directory.
	reopened, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	reCells, err := bookkeep.New(reopened).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reCells, diskCells) {
		a, _ := json.Marshal(reCells)
		b, _ := json.Marshal(diskCells)
		t.Fatalf("bookkeeping cells changed across close/reopen:\n got %s\nwant %s", a, b)
	}
	if got := report.TextMatrix(reCells); got != diskMatrix {
		t.Fatalf("rendered matrix changed across close/reopen:\n got:\n%s\nwant:\n%s", got, diskMatrix)
	}
}

// TestDiskIncrementConcurrent hammers the disk backend's atomic counter
// from many goroutines (run under -race in CI): every handed-out value
// must be unique — the property run/job ID minting depends on.
func TestDiskIncrementConcurrent(t *testing.T) {
	store, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const goroutines, perG = 8, 25
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n, err := store.Increment("meta", "jobseq")
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[n] {
					t.Errorf("counter value %d handed out twice", n)
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Fatalf("distinct values = %d, want %d", len(seen), goroutines*perG)
	}
}
