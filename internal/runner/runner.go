// Package runner executes validation suites as test jobs, reproducing
// the paper's §3.3 bookkeeping contract: "Each test-job started in the
// sp-system is typically assigned a unique ID, and all scripts and input
// files used in the test as well as all output files are kept ... In
// addition to this unique ID, validation jobs may be tagged with a
// description, indicating which software versions were used, and the
// Unix time stamp of the execution to aid the bookkeeping."
//
// Standalone tests run in parallel on a bounded worker pool; chain tests
// run sequentially behind their dependencies, matching Figure 2
// ("some ... are run in parallel, many are run sequentially"). A test
// whose prerequisite did not pass is skipped, never misreported.
package runner

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// JobRecord is the permanent record of one test job.
type JobRecord struct {
	// JobID is the unique job identifier, e.g. "job-000042".
	JobID string `json:"job_id"`
	// RunID is the enclosing validation run.
	RunID string `json:"run_id"`
	// Result is the test outcome.
	Result valtest.Result `json:"result"`
	// Timestamp is the Unix time of execution (simulated clock).
	Timestamp int64 `json:"timestamp"`
	// EnvKey is the storage key of the job's kept shell environment.
	EnvKey string `json:"env_key"`
}

// RunRecord is the permanent record of one validation run over a suite.
type RunRecord struct {
	// RunID is the unique run identifier, e.g. "run-0007".
	RunID string `json:"run_id"`
	// Description is the run's human tag ("which software versions were
	// used").
	Description string `json:"description"`
	// Experiment is the suite's owning collaboration.
	Experiment string `json:"experiment"`
	// Config is the platform configuration label.
	Config string `json:"config"`
	// Externals is the external software label.
	Externals string `json:"externals"`
	// RepoRevision is the experiment software revision validated.
	RepoRevision int `json:"repo_revision"`
	// InputDigest is the content-addressed summary of the run's inputs
	// (suite definition, repository revision, configuration, externals)
	// — see InputDigest. Records written before the digest existed
	// decode with an empty value and are treated as always-stale by the
	// campaign planner.
	InputDigest string `json:"input_digest,omitempty"`
	// Driver names the valtest.Driver the suite executed on. Empty means
	// the in-process platform driver — including every record written
	// before the driver seam existed, which therefore stays
	// byte-identical to what a platform-driver run records today.
	Driver string `json:"driver,omitempty"`
	// Timestamp is the Unix start time (simulated clock).
	Timestamp int64 `json:"timestamp"`
	// Jobs holds every job in deterministic (topological) order.
	Jobs []JobRecord `json:"jobs"`
	// SerialCost is the sum of all job costs; WallCost accounts for
	// standalone-test parallelism.
	SerialCost time.Duration `json:"serial_cost"`
	WallCost   time.Duration `json:"wall_cost"`
}

// Counts tallies job outcomes.
func (r *RunRecord) Counts() map[valtest.Outcome]int {
	out := make(map[valtest.Outcome]int)
	for _, j := range r.Jobs {
		out[j.Result.Outcome]++
	}
	return out
}

// Passed reports whether every job passed.
func (r *RunRecord) Passed() bool {
	for _, j := range r.Jobs {
		if !j.Result.Outcome.Passed() {
			return false
		}
	}
	return true
}

// Find returns the job record for the named test.
func (r *RunRecord) Find(test string) (*JobRecord, bool) {
	for i := range r.Jobs {
		if r.Jobs[i].Result.Test == test {
			return &r.Jobs[i], true
		}
	}
	return nil, false
}

// Storage namespaces used by the runner.
const (
	// RunsNS holds RunRecord JSON, keyed by run ID.
	RunsNS = "runs"
	// JobsNS holds kept job environments, keyed by job ID.
	JobsNS = "jobs"
	// metaNS holds framework counters.
	metaNS = "meta"
)

// Runner executes suites. It is safe for concurrent use: any number of
// goroutines (or Runner instances sharing a store) may call Run at once,
// and every run and job still receives a unique ID.
type Runner struct {
	store *storage.Store
	clock *simclock.Clock
	// Workers bounds standalone-test parallelism.
	Workers int
}

// New returns a Runner recording into the given store and stamping times
// from the given clock.
func New(store *storage.Store, clock *simclock.Clock) *Runner {
	return &Runner{store: store, clock: clock, Workers: 4}
}

// nextSeq increments a named persistent counter. The increment is atomic
// inside the store itself, so IDs stay unique across concurrent runs and
// across Runner instances sharing a store — a Runner-local mutex could
// not give the second guarantee.
func (rn *Runner) nextSeq(name string) (int, error) {
	n, err := rn.store.Increment(metaNS, name)
	if err != nil {
		return 0, fmt.Errorf("runner: counter %s: %w", name, err)
	}
	return n, nil
}

// Run executes the suite in the given context and records everything.
// The context's Env is extended with the run and job identifiers; its
// SP_WORKDIR is the run ID, so all chain files land in a per-run
// namespace and are kept forever. Tests execute on the in-process
// platform driver; use RunWith to execute on any other driver.
func (rn *Runner) Run(suite *valtest.Suite, base *valtest.Context, description string) (*RunRecord, error) {
	return rn.RunWith(&valtest.PlatformDriver{}, suite, base, description)
}

// RunWith executes the suite through the given driver's RunTest/Collect
// seam, in a context the caller already provisioned (normally via the
// same driver's Provision). Scheduling — wave grouping, the standalone
// worker pool, dependency skips — stays here regardless of driver, so
// every driver sees the identical execution order the paper's Figure 2
// prescribes. The driver's name is recorded and, for any driver other
// than the default platform one, folded into the run's input digest.
func (rn *Runner) RunWith(drv valtest.Driver, suite *valtest.Suite, base *valtest.Context, description string) (*RunRecord, error) {
	ordered, err := suite.Order()
	if err != nil {
		return nil, err
	}
	runSeq, err := rn.nextSeq("runseq")
	if err != nil {
		return nil, err
	}
	runID := fmt.Sprintf("run-%04d", runSeq)

	rec := &RunRecord{
		RunID:       runID,
		Description: description,
		Experiment:  suite.Experiment,
		Config:      base.Config.String(),
		Externals:   base.Externals.String(),
		Timestamp:   rn.clock.Unix(),
	}
	if base.Repo != nil {
		rec.RepoRevision = base.Repo.Revision
	}
	if name := drv.Name(); name != valtest.DefaultDriverName {
		rec.Driver = name
	}
	rec.InputDigest = InputDigestDriver(suite, rec.RepoRevision, base.Config, base.Externals, rec.Driver)

	outcomes := make(map[string]valtest.Outcome, len(ordered))
	results := make(map[string]valtest.Result, len(ordered))

	// Group ordered tests into waves: a test joins the earliest wave
	// after all its dependencies. Standalone tests inside a wave run in
	// parallel; everything else is sequential within its wave.
	wave := make(map[string]int, len(ordered))
	maxWave := 0
	for _, t := range ordered {
		w := 0
		for _, d := range t.DependsOn() {
			if dw, ok := wave[d]; ok && dw+1 > w {
				w = dw + 1
			}
		}
		wave[t.Name()] = w
		if w > maxWave {
			maxWave = w
		}
	}

	for w := 0; w <= maxWave; w++ {
		var standalone, sequential []valtest.Test
		for _, t := range ordered {
			if wave[t.Name()] != w {
				continue
			}
			if t.Category() == valtest.CatStandalone {
				standalone = append(standalone, t)
			} else {
				sequential = append(sequential, t)
			}
		}
		rn.runParallel(drv, standalone, base, runID, outcomes, results)
		for _, t := range sequential {
			results[t.Name()] = rn.runOne(drv, t, base, runID, outcomes)
			outcomes[t.Name()] = results[t.Name()].Outcome
		}
		// Wall cost: sequential tests serialize; standalone tests pack
		// onto Workers.
		var seqCost, saCost, saMax time.Duration
		for _, t := range sequential {
			seqCost += results[t.Name()].Cost
		}
		for _, t := range standalone {
			c := results[t.Name()].Cost
			saCost += c
			if c > saMax {
				saMax = c
			}
		}
		workers := rn.Workers
		if workers < 1 {
			workers = 1
		}
		parCost := saCost / time.Duration(workers)
		if parCost < saMax {
			parCost = saMax
		}
		rec.WallCost += seqCost + parCost
	}

	// Record jobs in the suite's topological order for stable output.
	for _, t := range ordered {
		res := results[t.Name()]
		rec.SerialCost += res.Cost
		jobSeq, err := rn.nextSeq("jobseq")
		if err != nil {
			return nil, err
		}
		job := JobRecord{
			JobID:     fmt.Sprintf("job-%06d", jobSeq),
			RunID:     runID,
			Result:    res,
			Timestamp: rn.clock.Unix(),
		}
		// Keep the job's full environment, per the paper's
		// keep-everything policy.
		env := base.Env.Clone()
		env[storage.EnvRunID] = runID
		env[storage.EnvJobID] = job.JobID
		env[storage.EnvWorkDir] = runID
		envKey := job.JobID + "/env"
		if _, err := rn.store.Put(JobsNS, envKey, []byte(env.Render())); err != nil {
			return nil, err
		}
		job.EnvKey = envKey
		rec.Jobs = append(rec.Jobs, job)
	}

	data, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if _, err := rn.store.Put(RunsNS, runID, data); err != nil {
		return nil, err
	}
	return rec, nil
}

// jobContext clones the base context with per-run environment variables.
func jobContext(base *valtest.Context, runID string) *valtest.Context {
	ctx := *base
	ctx.Env = base.Env.Clone()
	ctx.Env[storage.EnvRunID] = runID
	ctx.Env[storage.EnvWorkDir] = runID
	return &ctx
}

// runOne executes a single test, skipping it if any dependency did not
// pass.
func (rn *Runner) runOne(drv valtest.Driver, t valtest.Test, base *valtest.Context, runID string, outcomes map[string]valtest.Outcome) valtest.Result {
	if skipped, res := skipForDeps(t, outcomes); skipped {
		return res
	}
	return safeRun(drv, t, jobContext(base, runID))
}

// safeRun contains a panicking test or driver: a crashing test
// executable is a normal event for the framework (that is much of what
// it exists to detect) and must never take the validation run down with
// it. The driver's Collect runs inside the same recovery, so a driver
// that panics while handing artifacts back is contained identically.
func safeRun(drv valtest.Driver, t valtest.Test, ctx *valtest.Context) (res valtest.Result) {
	defer func() {
		if r := recover(); r != nil {
			res = valtest.Result{
				Test:     t.Name(),
				Category: t.Category(),
				Outcome:  valtest.OutcomeError,
				Detail:   fmt.Sprintf("test crashed: %v", r),
			}
		}
	}()
	return drv.Collect(ctx, drv.RunTest(t, ctx))
}

// runParallel executes standalone tests concurrently on the worker pool.
// Dependencies of tests in this wave completed in earlier waves, so skip
// decisions are taken up front and the outcome map is only written after
// every worker has finished — no goroutine touches shared state mid-wave.
func (rn *Runner) runParallel(drv valtest.Driver, tests []valtest.Test, base *valtest.Context, runID string,
	outcomes map[string]valtest.Outcome, results map[string]valtest.Result) {

	if len(tests) == 0 {
		return
	}
	var runnable []valtest.Test
	for _, t := range tests {
		if skipped, res := skipForDeps(t, outcomes); skipped {
			results[t.Name()] = res
			outcomes[t.Name()] = res.Outcome
			continue
		}
		runnable = append(runnable, t)
	}

	workers := rn.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	waveResults := make([]valtest.Result, len(runnable))
	for i, t := range runnable {
		wg.Add(1)
		go func(i int, t valtest.Test) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			waveResults[i] = safeRun(drv, t, jobContext(base, runID))
		}(i, t)
	}
	wg.Wait()
	for i, t := range runnable {
		results[t.Name()] = waveResults[i]
		outcomes[t.Name()] = waveResults[i].Outcome
	}
}

// skipForDeps reports whether the test must be skipped because a
// prerequisite did not pass.
func skipForDeps(t valtest.Test, outcomes map[string]valtest.Outcome) (bool, valtest.Result) {
	for _, d := range t.DependsOn() {
		if !outcomes[d].Passed() {
			return true, valtest.Result{
				Test:     t.Name(),
				Category: t.Category(),
				Outcome:  valtest.OutcomeSkip,
				Detail:   fmt.Sprintf("prerequisite %s did not pass", d),
			}
		}
	}
	return false, valtest.Result{}
}

// CompareIDs orders two framework identifiers ("run-0007", "job-000042")
// by execution order: digit runs compare numerically, everything else
// byte-wise. Plain lexicographic ordering silently breaks at counter
// rollover — "run-10000" sorts *before* "run-9999" as a string, so a
// long-lived store would pick the wrong baseline for every diff past
// 9999 runs. Every place the framework orders run or job IDs goes
// through this comparison. It returns -1, 0 or 1.
func CompareIDs(a, b string) int {
	// tie remembers the first zero-padding difference between digit runs
	// that were numerically equal ("007" vs "07"), so distinct IDs never
	// compare equal — CompareIDs is a strict total order.
	tie := 0
	for a != "" && b != "" {
		da, db := digitRun(a), digitRun(b)
		if da > 0 && db > 0 {
			// Compare the two digit runs as numbers of arbitrary size:
			// strip leading zeros, then longer means larger, then the
			// digits themselves decide.
			na, nb := strings.TrimLeft(a[:da], "0"), strings.TrimLeft(b[:db], "0")
			switch {
			case len(na) != len(nb):
				if len(na) < len(nb) {
					return -1
				}
				return 1
			case na != nb:
				if na < nb {
					return -1
				}
				return 1
			}
			if tie == 0 {
				tie = strings.Compare(a[:da], b[:db])
			}
			a, b = a[da:], b[db:]
			continue
		}
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		a, b = a[1:], b[1:]
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return tie
	}
}

// digitRun returns the length of the leading run of ASCII digits in s.
func digitRun(s string) int {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return i
}

// LoadRun retrieves a recorded run from storage.
func LoadRun(store *storage.Store, runID string) (*RunRecord, error) {
	data, err := store.Get(RunsNS, runID)
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("runner: corrupt run record %s: %w", runID, err)
	}
	return &rec, nil
}

// ListRuns returns the IDs of all recorded runs in execution order
// (numeric-aware, so run-10000 follows run-9999).
func ListRuns(store *storage.Store) []string {
	ids := store.List(RunsNS)
	sort.Slice(ids, func(i, j int) bool { return CompareIDs(ids[i], ids[j]) < 0 })
	return ids
}

// LoadJobEnv retrieves the kept shell environment of a job.
func LoadJobEnv(store *storage.Store, rec *JobRecord) (storage.Env, error) {
	data, err := store.Get(JobsNS, rec.EnvKey)
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	return storage.ParseEnv(string(data))
}
