package runner

import (
	"sort"
	"testing"
)

func TestCompareIDs(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"run-0001", "run-0002", -1},
		{"run-0002", "run-0001", 1},
		{"run-0042", "run-0042", 0},
		// The rollover cases string comparison gets wrong.
		{"run-9999", "run-10000", -1},
		{"run-10000", "run-9999", 1},
		{"run-99999", "run-100000", -1},
		{"job-000999", "job-001000", -1},
		// Zero padding: numerically equal IDs stay distinct and ordered.
		{"run-007", "run-07", -1},
		{"run-07", "run-007", 1},
		{"run-007", "run-007", 0},
		// Mixed text segments.
		{"run-2-retry", "run-10-retry", -1},
		{"run-2-retry", "run-2-setup", -1},
		{"run", "run-1", -1},
		{"", "run-1", -1},
		{"", "", 0},
	}
	for _, tc := range cases {
		if got := CompareIDs(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareIDs(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		// Antisymmetry.
		if got, rev := CompareIDs(tc.a, tc.b), CompareIDs(tc.b, tc.a); got != -rev {
			t.Errorf("CompareIDs(%q, %q) = %d but reversed = %d", tc.a, tc.b, got, rev)
		}
	}
}

func TestCompareIDsSortsRollover(t *testing.T) {
	ids := []string{"run-10000", "run-0002", "run-9999", "run-10001", "run-0010"}
	sort.Slice(ids, func(i, j int) bool { return CompareIDs(ids[i], ids[j]) < 0 })
	want := []string{"run-0002", "run-0010", "run-9999", "run-10000", "run-10001"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
}
