package runner

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

func benchSuite(n int) *valtest.Suite {
	suite := valtest.NewSuite("bench")
	for i := 0; i < n; i++ {
		suite.MustAdd(&valtest.FuncTest{
			TestName: fmt.Sprintf("standalone/t%04d", i),
			Cat:      valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result {
				return valtest.Result{Outcome: valtest.OutcomePass, Cost: time.Second}
			},
		})
	}
	return suite
}

func BenchmarkRun100StandaloneTests(b *testing.B) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := benchSuite(100)
	ctx := baseContext(store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Run(suite, ctx, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadRun(b *testing.B) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	rec, err := rn.Run(benchSuite(100), baseContext(store), "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadRun(store, rec.RunID); err != nil {
			b.Fatal(err)
		}
	}
}
