package runner

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/valtest"
)

// SynthOptions configures SynthesizeRuns.
type SynthOptions struct {
	// Experiment labels the synthetic runs ("SYNTH" when empty), keeping
	// them visually separate from real campaign records in every status
	// surface.
	Experiment string
	// Configs are the platform labels the runs rotate through (a small
	// default set when empty), so the synthesized store exercises
	// multi-cell matrix paths.
	Configs []string
	// JobsPerRun is the number of job results per record (default 2).
	JobsPerRun int
	// FailEvery makes every k-th run carry one failing job (0: all
	// green), so diff/baseline paths have something to chew on.
	FailEvery int
}

// SynthesizeRuns appends n synthetic — but structurally valid — run
// records to the store, for building large bookkeeping populations
// without executing validation work: scaling benchmarks and the CI
// large-store smoke job. Run (and job) IDs continue from the store's
// persisted counters and the counters are advanced past them, so real
// validation runs recorded afterwards mint non-colliding IDs. The
// records index, page, diff and render exactly like real ones; they
// carry no kept artifacts and no input digest (the planner treats them
// as always-stale, like any pre-digest record).
func SynthesizeRuns(store *storage.Store, n int, opts SynthOptions) (firstID, lastID string, err error) {
	if n <= 0 {
		return "", "", fmt.Errorf("runner: synthesizing %d runs", n)
	}
	if opts.Experiment == "" {
		opts.Experiment = "SYNTH"
	}
	if len(opts.Configs) == 0 {
		opts.Configs = []string{"SL6/64bit gcc4.4", "SL5/32bit gcc4.1"}
	}
	if opts.JobsPerRun <= 0 {
		opts.JobsPerRun = 2
	}
	runBase, err := counterValue(store, "runseq")
	if err != nil {
		return "", "", err
	}
	jobBase, err := counterValue(store, "jobseq")
	if err != nil {
		return "", "", err
	}
	jobSeq := jobBase
	for i := 1; i <= n; i++ {
		seq := runBase + i
		runID := fmt.Sprintf("run-%04d", seq)
		rec := RunRecord{
			RunID:        runID,
			Description:  fmt.Sprintf("synthetic run %d", seq),
			Experiment:   opts.Experiment,
			Config:       opts.Configs[i%len(opts.Configs)],
			Externals:    "root-5.34+cernlib-2006+mcgen-1.4",
			RepoRevision: 1,
			Timestamp:    1356998400 + int64(i)*60, // 2013 epoch + a minute per run
			SerialCost:   time.Duration(opts.JobsPerRun) * time.Second,
			WallCost:     time.Second,
		}
		for j := 0; j < opts.JobsPerRun; j++ {
			jobSeq++
			outcome := valtest.OutcomePass
			detail := ""
			if j == 0 && opts.FailEvery > 0 && i%opts.FailEvery == 0 {
				outcome = valtest.OutcomeFail
				detail = "synthetic failure"
			}
			rec.Jobs = append(rec.Jobs, JobRecord{
				JobID:     fmt.Sprintf("job-%06d", jobSeq),
				RunID:     runID,
				Timestamp: rec.Timestamp,
				Result: valtest.Result{
					Test:     fmt.Sprintf("synthetic%02d", j),
					Category: valtest.CatStandalone,
					Outcome:  outcome,
					Detail:   detail,
					Cost:     time.Second,
				},
			})
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			return "", "", err
		}
		if _, err := store.Put(RunsNS, runID, data); err != nil {
			return "", "", err
		}
		if i == 1 {
			firstID = runID
		}
		lastID = runID
	}
	// Advance the persisted counters past the synthesized IDs so later
	// real runs stay unique.
	if err := setCounter(store, "runseq", runBase+n); err != nil {
		return "", "", err
	}
	if err := setCounter(store, "jobseq", jobSeq); err != nil {
		return "", "", err
	}
	return firstID, lastID, nil
}

// counterValue reads a persistent counter's current value (0 when
// unbound).
func counterValue(store *storage.Store, name string) (int, error) {
	if !store.Exists(metaNS, name) {
		return 0, nil
	}
	data, err := store.Get(metaNS, name)
	if err != nil {
		return 0, fmt.Errorf("runner: counter %s: %w", name, err)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return 0, fmt.Errorf("runner: counter %s is not an integer: %w", name, err)
	}
	return n, nil
}

// setCounter binds a persistent counter to an explicit value, in the
// same JSON form Increment writes.
func setCounter(store *storage.Store, name string, v int) error {
	data, _ := json.Marshal(v)
	_, err := store.Put(metaNS, name, data)
	return err
}
