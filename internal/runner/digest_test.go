package runner

import (
	"testing"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

func digestSuite(t *testing.T, experiment string, tests ...string) *valtest.Suite {
	t.Helper()
	s := valtest.NewSuite(experiment)
	for _, name := range tests {
		s.MustAdd(&valtest.FuncTest{
			TestName: name, Cat: valtest.CatStandalone,
			Fn: func(*valtest.Context) valtest.Result { return valtest.Result{Outcome: valtest.OutcomePass} },
		})
	}
	return s
}

func digestExts(t *testing.T) *externals.Set {
	t.Helper()
	cat := externals.NewCatalogue()
	root, err := cat.Get(externals.ROOT, "5.34")
	if err != nil {
		t.Fatal(err)
	}
	set, err := externals.NewSet(root)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestInputDigestDiscriminates: equal inputs digest equal; changing any
// single input — suite definition, revision, configuration, externals —
// changes the digest.
func TestInputDigestDiscriminates(t *testing.T) {
	cfg := platform.OriginalConfig()
	exts := digestExts(t)
	base := InputDigest(digestSuite(t, "H1", "a", "b"), 3, cfg, exts)

	if got := InputDigest(digestSuite(t, "H1", "a", "b"), 3, cfg, exts); got != base {
		t.Fatalf("identical inputs digest differently: %s vs %s", got, base)
	}
	reFingered := digestSuite(t, "H1", "a", "b")
	reFingered.Fingerprint = "ChainEvents:5000"
	variants := map[string]string{
		"suite":       InputDigest(digestSuite(t, "H1", "a", "c"), 3, cfg, exts),
		"exp":         InputDigest(digestSuite(t, "ZEUS", "a", "b"), 3, cfg, exts),
		"fingerprint": InputDigest(reFingered, 3, cfg, exts),
		"revision":    InputDigest(digestSuite(t, "H1", "a", "b"), 4, cfg, exts),
		"config":      InputDigest(digestSuite(t, "H1", "a", "b"), 3, platform.ReferenceConfig(), exts),
		"externals":   InputDigest(digestSuite(t, "H1", "a", "b"), 3, cfg, nil),
	}
	seen := map[string]string{base: "base"}
	for name, d := range variants {
		if prev, dup := seen[d]; dup {
			t.Fatalf("changing %s collides with %s: %s", name, prev, d)
		}
		seen[d] = name
	}
	if len(base) != 64 {
		t.Fatalf("digest is not a hex SHA-256: %q", base)
	}
}

// TestRunRecordsInputDigest: every recorded run carries the digest of
// the inputs it actually exercised.
func TestRunRecordsInputDigest(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := digestSuite(t, "H1", "a")
	exts := digestExts(t)
	ctx := &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.OriginalConfig(),
		Externals: exts,
	}
	rec, err := rn.Run(suite, ctx, "digest test")
	if err != nil {
		t.Fatal(err)
	}
	want := InputDigest(suite, 0, platform.OriginalConfig(), exts)
	if rec.InputDigest != want {
		t.Fatalf("recorded digest %s, want %s", rec.InputDigest, want)
	}
	back, err := LoadRun(store, rec.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if back.InputDigest != want {
		t.Fatalf("digest lost across storage round-trip: %q", back.InputDigest)
	}
}
