package runner

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

func baseContext(store *storage.Store) *valtest.Context {
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	return &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.ReferenceConfig(),
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      swrepo.NewRepository("H1"),
	}
}

func passTest(name string, cat valtest.Category, cost time.Duration, deps ...string) *valtest.FuncTest {
	return &valtest.FuncTest{
		TestName: name, Cat: cat, Deps: deps,
		Fn: func(ctx *valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomePass, Detail: "ok", Cost: cost}
		},
	}
}

func failTest(name string, cat valtest.Category, deps ...string) *valtest.FuncTest {
	return &valtest.FuncTest{
		TestName: name, Cat: cat, Deps: deps,
		Fn: func(ctx *valtest.Context) valtest.Result {
			return valtest.Result{Outcome: valtest.OutcomeFail, Detail: "broken"}
		},
	}
}

func TestRunAssignsUniqueIDs(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("a", valtest.CatStandalone, time.Second))
	suite.MustAdd(passTest("b", valtest.CatStandalone, time.Second))

	rec1, err := rn.Run(suite, baseContext(store), "first")
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := rn.Run(suite, baseContext(store), "second")
	if err != nil {
		t.Fatal(err)
	}
	if rec1.RunID == rec2.RunID {
		t.Fatal("run IDs not unique")
	}
	seen := make(map[string]bool)
	for _, rec := range []*RunRecord{rec1, rec2} {
		for _, j := range rec.Jobs {
			if seen[j.JobID] {
				t.Fatalf("duplicate job ID %s", j.JobID)
			}
			seen[j.JobID] = true
		}
	}
}

func TestRunRecordsTagAndTimestamp(t *testing.T) {
	store := storage.NewStore()
	clock := simclock.NewAt(time.Unix(1382400000, 0))
	rn := New(store, clock)
	suite := valtest.NewSuite("ZEUS")
	suite.MustAdd(passTest("a", valtest.CatStandalone, time.Second))

	rec, err := rn.Run(suite, baseContext(store), "SL6 migration, ROOT 5.34")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Description != "SL6 migration, ROOT 5.34" {
		t.Fatalf("description = %q", rec.Description)
	}
	if rec.Timestamp != 1382400000 {
		t.Fatalf("timestamp = %d", rec.Timestamp)
	}
	if rec.Experiment != "ZEUS" || rec.Config != "SL5/64bit gcc4.1" {
		t.Fatalf("metadata = %q %q", rec.Experiment, rec.Config)
	}
}

func TestRunPersistsAndReloads(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("a", valtest.CatStandalone, time.Second))
	rec, err := rn.Run(suite, baseContext(store), "tag")
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadRun(store, rec.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RunID != rec.RunID || len(loaded.Jobs) != 1 || loaded.Description != "tag" {
		t.Fatalf("loaded = %+v", loaded)
	}
	if got := ListRuns(store); len(got) != 1 || got[0] != rec.RunID {
		t.Fatalf("ListRuns = %v", got)
	}
	if _, err := LoadRun(store, "run-9999"); err == nil {
		t.Fatal("missing run loaded")
	}
}

func TestJobEnvironmentKept(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("a", valtest.CatStandalone, time.Second))
	rec, _ := rn.Run(suite, baseContext(store), "tag")

	job := rec.Jobs[0]
	env, err := LoadJobEnv(store, &job)
	if err != nil {
		t.Fatal(err)
	}
	if env[storage.EnvRunID] != rec.RunID {
		t.Fatalf("SP_RUN_ID = %q", env[storage.EnvRunID])
	}
	if env[storage.EnvJobID] != job.JobID {
		t.Fatalf("SP_JOB_ID = %q", env[storage.EnvJobID])
	}
	if env[storage.EnvWorkDir] != rec.RunID {
		t.Fatalf("SP_WORKDIR = %q", env[storage.EnvWorkDir])
	}
}

func TestDependencySkipPropagates(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(failTest("gen", valtest.CatChain))
	suite.MustAdd(passTest("sim", valtest.CatChain, time.Second, "gen"))
	suite.MustAdd(passTest("reco", valtest.CatChain, time.Second, "sim"))
	suite.MustAdd(passTest("island", valtest.CatStandalone, time.Second))

	rec, err := rn.Run(suite, baseContext(store), "")
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	if counts[valtest.OutcomeFail] != 1 || counts[valtest.OutcomeSkip] != 2 || counts[valtest.OutcomePass] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	sim, _ := rec.Find("sim")
	if !strings.Contains(sim.Result.Detail, "gen") {
		t.Fatalf("skip detail = %q", sim.Result.Detail)
	}
	if rec.Passed() {
		t.Fatal("Passed() with failures")
	}
}

func TestStandaloneParallelism(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	rn.Workers = 4

	var inFlight, peak int32
	suite := valtest.NewSuite("H1")
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		name := name
		suite.MustAdd(&valtest.FuncTest{
			TestName: name, Cat: valtest.CatStandalone,
			Fn: func(ctx *valtest.Context) valtest.Result {
				n := atomic.AddInt32(&inFlight, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt32(&inFlight, -1)
				return valtest.Result{Outcome: valtest.OutcomePass, Cost: time.Minute}
			},
		})
	}
	rec, err := rn.Run(suite, baseContext(store), "")
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got < 2 {
		t.Fatalf("peak parallelism = %d, want >= 2", got)
	}
	if got := atomic.LoadInt32(&peak); got > 4 {
		t.Fatalf("peak parallelism = %d exceeds worker bound 4", got)
	}
	// Wall cost: 8 one-minute tests on 4 workers = 2 minutes, vs 8 serial.
	if rec.SerialCost != 8*time.Minute {
		t.Fatalf("serial cost = %v", rec.SerialCost)
	}
	if rec.WallCost != 2*time.Minute {
		t.Fatalf("wall cost = %v, want 2m", rec.WallCost)
	}
}

func TestChainSequentialCost(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("gen", valtest.CatChain, time.Minute))
	suite.MustAdd(passTest("sim", valtest.CatChain, time.Minute, "gen"))
	suite.MustAdd(passTest("reco", valtest.CatChain, time.Minute, "sim"))
	rec, err := rn.Run(suite, baseContext(store), "")
	if err != nil {
		t.Fatal(err)
	}
	if rec.WallCost != 3*time.Minute {
		t.Fatalf("chain wall cost = %v, want 3m", rec.WallCost)
	}
}

func TestJobsRecordedInTopologicalOrder(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("z-last", valtest.CatChain, 0, "a-first"))
	suite.MustAdd(passTest("a-first", valtest.CatChain, 0))
	rec, _ := rn.Run(suite, baseContext(store), "")
	if rec.Jobs[0].Result.Test != "a-first" || rec.Jobs[1].Result.Test != "z-last" {
		t.Fatalf("job order: %s, %s", rec.Jobs[0].Result.Test, rec.Jobs[1].Result.Test)
	}
}

func TestPanickingTestContained(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(&valtest.FuncTest{
		TestName: "boom-standalone", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result { panic("SIGSEGV") },
	})
	suite.MustAdd(&valtest.FuncTest{
		TestName: "boom-chain", Cat: valtest.CatChain,
		Fn: func(*valtest.Context) valtest.Result { panic("stack overflow") },
	})
	suite.MustAdd(passTest("survivor", valtest.CatStandalone, time.Second))

	rec, err := rn.Run(suite, baseContext(store), "panics")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"boom-standalone", "boom-chain"} {
		job, ok := rec.Find(name)
		if !ok || job.Result.Outcome != valtest.OutcomeError {
			t.Fatalf("%s = %+v", name, job)
		}
		if !strings.Contains(job.Result.Detail, "crashed") {
			t.Fatalf("%s detail = %q", name, job.Result.Detail)
		}
	}
	if job, _ := rec.Find("survivor"); job.Result.Outcome != valtest.OutcomePass {
		t.Fatal("survivor did not run after sibling crashes")
	}
}

func TestRunRejectsCyclicSuite(t *testing.T) {
	store := storage.NewStore()
	rn := New(store, simclock.New())
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("a", valtest.CatChain, 0, "b"))
	suite.MustAdd(passTest("b", valtest.CatChain, 0, "a"))
	if _, err := rn.Run(suite, baseContext(store), ""); err == nil {
		t.Fatal("cyclic suite accepted")
	}
}

// TestConcurrentRunsMintUniqueIDs exercises the paper's many-clients
// scenario: several Runner instances sharing one common storage execute
// runs concurrently, and every run and job ID must still be unique.
// Run with -race: the ID counters live in the store and are incremented
// atomically there.
func TestConcurrentRunsMintUniqueIDs(t *testing.T) {
	store := storage.NewStore()
	clock := simclock.New()
	suite := valtest.NewSuite("H1")
	suite.MustAdd(passTest("a", valtest.CatStandalone, time.Second))
	suite.MustAdd(passTest("b", valtest.CatStandalone, time.Second))
	suite.MustAdd(passTest("c", valtest.CatChain, time.Second, "a"))

	const clients, runsPer = 8, 5
	recs := make([][]*RunRecord, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rn := New(store, clock) // each client has its own Runner
			for i := 0; i < runsPer; i++ {
				rec, err := rn.Run(suite, baseContext(store), "concurrent")
				if err != nil {
					t.Error(err)
					return
				}
				recs[c] = append(recs[c], rec)
			}
		}(c)
	}
	wg.Wait()

	runIDs := make(map[string]bool)
	jobIDs := make(map[string]bool)
	for _, client := range recs {
		for _, rec := range client {
			if runIDs[rec.RunID] {
				t.Fatalf("duplicate run ID %s", rec.RunID)
			}
			runIDs[rec.RunID] = true
			for _, j := range rec.Jobs {
				if jobIDs[j.JobID] {
					t.Fatalf("duplicate job ID %s", j.JobID)
				}
				jobIDs[j.JobID] = true
			}
		}
	}
	if want := clients * runsPer; len(runIDs) != want {
		t.Fatalf("recorded %d runs, want %d", len(runIDs), want)
	}
	if want := clients * runsPer * 3; len(jobIDs) != want {
		t.Fatalf("recorded %d jobs, want %d", len(jobIDs), want)
	}
	if got := len(ListRuns(store)); got != clients*runsPer {
		t.Fatalf("store holds %d runs, want %d", got, clients*runsPer)
	}
}
