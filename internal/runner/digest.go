package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/valtest"
)

// InputDigest summarizes everything that determines a validation run's
// outcome into one content-addressed identifier: the suite definition
// (experiment, construction fingerprint, test names, categories and
// dependency edges), the software repository revision, the platform
// configuration and the external software set. Two runs with equal
// digests exercised the same inputs, so a green run makes every later
// run with the same digest redundant — the property the campaign
// planner uses to skip up-to-date cells. The digest is a hex SHA-256,
// stable across processes: the suite listing is taken in insertion
// order (deterministic, the suites are generated from seeded
// definitions) and the config and externals enter through their
// canonical Key forms. The fingerprint carries the generation
// parameters the test listing cannot encode (Monte-Carlo statistics,
// seeds), so changing those stales recorded results too.
func InputDigest(suite *valtest.Suite, revision int, cfg platform.Config, exts *externals.Set) string {
	h := sha256.New()
	fmt.Fprintf(h, "experiment:%s\nfingerprint:%s\n", suite.Experiment, suite.Fingerprint)
	for _, t := range suite.Tests() {
		deps := append([]string(nil), t.DependsOn()...)
		sort.Strings(deps)
		fmt.Fprintf(h, "test:%s|%d|%s\n", t.Name(), t.Category(), strings.Join(deps, ","))
	}
	extKey := "(no externals)"
	if exts != nil {
		extKey = exts.Key()
	}
	fmt.Fprintf(h, "revision:%d\nconfig:%s\nexternals:%s\n", revision, cfg.Key(), extKey)
	return hex.EncodeToString(h.Sum(nil))
}

// InputDigestDriver is InputDigest extended with the executing driver's
// identity. The default platform driver (named by an empty string or
// valtest.DefaultDriverName) contributes nothing — the digest is
// byte-identical to InputDigest, so introducing the driver seam staled
// no recorded cell. Any other driver is folded in, because where a suite
// runs is an input: a vmhost green run must not satisfy a planner
// looking for a platform one, and a fault-injection run must never
// satisfy anybody.
func InputDigestDriver(suite *valtest.Suite, revision int, cfg platform.Config, exts *externals.Set, driver string) string {
	if driver == "" || driver == valtest.DefaultDriverName {
		return InputDigest(suite, revision, cfg, exts)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\ndriver:%s\n", InputDigest(suite, revision, cfg, exts), driver)
	return hex.EncodeToString(h.Sum(nil))
}
