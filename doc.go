// Package repro is a Go reproduction of "A Validation Framework for the
// Long Term Preservation of High Energy Physics Data" (Ozerov & South,
// DPHEP/DESY, arXiv:1310.7814): the sp-system, which builds experiment
// software across a matrix of computing environments, runs the
// experiments' validation suites, keeps complete bookkeeping, and powers
// the adapt-and-validate preservation strategy.
//
// The common storage is pluggable (internal/storage.Backend): in-memory
// by default, or a durable content-addressed on-disk store via the
// -store DIR flag every command accepts — `spsys campaign -store DIR`
// records a campaign that a separate `spreport -store DIR` process
// renders later, the paper's workflow of independent clients sharing
// one common storage. Read-only consumers attach through
// storage.OpenReadOnly, a shared-lock view that works while the
// campaign writer is live; `spserve -store DIR` builds on it to serve
// the status matrix, run pages, diffs, artifacts and JSON APIs as a
// long-running HTTP service that picks up new runs as they are
// recorded. The serving tier (internal/serve) stamps every dynamic
// route with a strong ETag keyed on the store's journal position and
// snapshot generation, answers If-None-Match polls with 304s that do
// zero index work, keeps a bounded cache of rendered bodies that the
// position key invalidates implicitly, negotiates gzip, and pushes
// run-recorded/plan-recorded/generation-changed events over an
// /events SSE stream — so a fleet of dashboards polling one spserve
// costs it header parsing, not renders. (The pre-v1 /api/matrix,
// /api/plan, /api/runs and /blob/ aliases finished their one-release
// deprecation window and are gone.)
//
// Campaigns are incremental: every run records a content-addressed
// input digest (suite definition + repository revision + configuration
// + externals), and the campaign planner skips cells whose digest
// already has a green run, so re-validating an unchanged store costs
// nothing. `spd -store DIR -cron SPEC` is the daemon mode built on
// that split — the producer-side twin of spserve — re-planning and
// executing the matrix on a real cron cadence with clean SIGTERM
// shutdown.
//
// Campaigns also scale out: `spd -listen ADDR -token T` makes the
// flock-holding primary serve the store's write API over HTTP, and any
// number of `spd -worker -store http://primary -token T` processes
// join the drain with no local state. Workers coordinate through cell
// leases in the store itself (`plan/lease/<digest>` records claimed by
// compare-and-swap, renewed while executing, stolen with a fencing-
// epoch bump when a holder goes silent past its TTL), so every stale
// cell executes exactly once across the fleet and a crashed worker's
// cells are re-claimed safely. `spsys store leases` and the /healthz
// leases block show the ledger; see the "Distributed execution"
// section of DESIGN.md.
//
// Suites are pure data run through a valtest.Driver — in-process, on
// vmhost image-derived clients, or fault-wrapped — with run records and
// input digests qualified by driver name (the in-process platform
// driver digests exactly as pre-seam runs did; see the "Driver
// contract" section of DESIGN.md). `spd -store DIR -scrub` rides the
// same seam as the archive's bit-rot scrubber: each cycle re-reads and
// re-hashes every blob (internal/scrub) and records the verdicts as
// ordinary runs under the SCRUB experiment, so corruption shows up in
// the same matrix, history and JSON APIs as any failing validation.
//
// The store is built for decades of accumulated history: `spsys store
// compact` folds the name journal into a checksummed, generation-
// counted snapshot (spd does it opportunistically), the bookkeeping
// index persists itself as a segment keyed by the journal position it
// covers, and every list-of-runs surface (`/api/v1/runs`, `spsys runs`)
// pages with cursors — so opening, indexing and serving an archive
// cost O(what changed recently), not O(everything ever recorded).
// `spsys store stats` shows the snapshot/journal figures; `spsys store
// synth` builds large synthetic stores for scaling work.
//
// Stores replicate across sites with one writer and N followers.
// spserve publishes the store itself under /api/v1/ (blobs, name
// bindings, journal position) with one JSON error envelope;
// storage.OpenRemote is the client — the same read Backend over HTTP,
// hash-verifying every blob on read — so the inspection commands
// (`spsys runs/matrix/history -store http://...`, `spreport -store
// URL`) work against a URL with no local copy. `spsys store sync SRC
// DST` replicates a directory or URL into a directory — additive,
// idempotent (a re-sync moves nothing), resumable by re-running — and
// `spserve -store R -follow URL -every 30s` keeps a serving replica
// converging on a cadence, reporting replication lag in /healthz. See
// the "Replication topology" section of DESIGN.md.
//
// The repo's cross-cutting contracts — numeric-aware run-ID ordering,
// the simclock/simrand determinism seams, the staged store write
// protocol, mutex-guarded shared state, fail-stop Close/Sync handling —
// are enforced mechanically by cmd/spvet, an invariant-lint suite that
// runs standalone (`spvet ./...`) or as `go vet -vettool`; see
// internal/analysis and the "Enforced invariants" section of DESIGN.md.
//
// See DESIGN.md for the system inventory (including the storage backend
// contract and on-disk layout), EXPERIMENTS.md for the
// paper-versus-measured record, and bench_test.go for the harnesses that
// regenerate every table and figure.
package repro
