// Package repro is a Go reproduction of "A Validation Framework for the
// Long Term Preservation of High Energy Physics Data" (Ozerov & South,
// DPHEP/DESY, arXiv:1310.7814): the sp-system, which builds experiment
// software across a matrix of computing environments, runs the
// experiments' validation suites, keeps complete bookkeeping, and powers
// the adapt-and-validate preservation strategy.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and bench_test.go for the harnesses that
// regenerate every table and figure.
package repro
