// Benchmarks regenerating every table and figure of the paper, its
// quantitative claims, and ablations of the design choices DESIGN.md
// calls out. Each benchmark prints its artifact once (first iteration)
// so that `go test -bench=. | tee bench_output.txt` records the
// reproduced rows alongside the timings, and reports the headline
// numbers as custom metrics.
package repro

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cron"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/lifetime"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/valtest"
	"repro/internal/vmhost"
)

// printOnce guards artifact printing so repeated benchmark iterations
// do not flood the log.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// scaledDef returns the experiment definition with workloads scaled for
// benchmark turnaround while preserving the suite structure.
func scaledDef(def experiments.Definition, packages, events, standalone int) experiments.Definition {
	def.RepoSpec.Packages = packages
	def.ChainEvents = events
	def.StandaloneTests = standalone
	return def
}

func mustStdSet(b *testing.B, sys *core.SPSystem) *externals.Set {
	b.Helper()
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		b.Fatal(err)
	}
	return exts
}

// ---------------------------------------------------------------------
// T1 — Table 1: DPHEP preservation levels.

func BenchmarkTable1PreservationLevels(b *testing.B) {
	var rows []experiments.LevelInfo
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	once("table1", func() {
		fmt.Println("\n=== Table 1: data preservation levels (DPHEP) ===")
		for _, r := range rows {
			fmt.Printf("  level %d: %-70s | %s\n", r.Level, r.Model, r.UseCase)
		}
	})
	b.ReportMetric(float64(len(rows)), "levels")
}

// ---------------------------------------------------------------------
// F1 — Figure 1: the validation-system workflow with its three
// separated inputs.

func BenchmarkFigure1ValidationWorkflow(b *testing.B) {
	var rec *runner.RunRecord
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 15, 500, 15)
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)

		// Input 3 (OS) + input 2 (externals) become an image; a client
		// boots from it with the two-requirement contract.
		im, err := sys.ProvisionImage(platform.ReferenceConfig(), exts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.AddClient(fmt.Sprintf("vm-%d", i), vmhost.VM, im.ID, "0 3 * * *"); err != nil {
			b.Fatal(err)
		}
		// Input 1 (experiment software) is built and validated on it.
		rec, err = sys.Validate("H1", im.Config, exts, "figure 1 workflow cycle")
		if err != nil {
			b.Fatal(err)
		}
		if !rec.Passed() {
			b.Fatal("workflow cycle failed")
		}
	}
	once("figure1", func() {
		fmt.Println("\n=== Figure 1: one full validation cycle ===")
		fmt.Printf("  inputs: experiment software (15 packages) | externals (%s) | OS (%s)\n",
			rec.Externals, rec.Config)
		counts := rec.Counts()
		fmt.Printf("  cycle: image built -> client booted -> software built -> %d tests -> bookkeeping %s\n",
			len(rec.Jobs), rec.RunID)
		fmt.Printf("  outcome: pass=%d fail=%d skip=%d error=%d\n",
			counts[valtest.OutcomePass], counts[valtest.OutcomeFail],
			counts[valtest.OutcomeSkip], counts[valtest.OutcomeError])
	})
	b.ReportMetric(float64(len(rec.Jobs)), "jobs")
}

// ---------------------------------------------------------------------
// F2 — Figure 2: the H1 test outline (~100 package compilations, up to
// 500 tests, standalone tests in parallel plus sequential chains).

func BenchmarkFigure2H1TestSuite(b *testing.B) {
	var rec *runner.RunRecord
	var suiteLen int
	var counts map[valtest.Category]int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		if err := sys.RegisterExperiment(experiments.H1()); err != nil {
			b.Fatal(err)
		}
		st, _ := sys.Experiment("H1")
		suiteLen = st.Suite.Len()
		counts = st.Suite.CountByCategory()
		exts := mustStdSet(b, sys)
		var err error
		rec, err = sys.Validate("H1", platform.ReferenceConfig(), exts, "figure 2: full H1 suite")
		if err != nil {
			b.Fatal(err)
		}
	}
	once("figure2", func() {
		fmt.Println("\n=== Figure 2: H1 validation test outline ===")
		fmt.Printf("  package compilations: %d (paper: ~100)\n", counts[valtest.CatCompile])
		fmt.Printf("  standalone executable tests (parallel): %d\n", counts[valtest.CatStandalone])
		fmt.Printf("  analysis-chain stage tests (sequential): %d (2 full chains: MC gen -> sim -> reco -> DST/ODS/HAT -> analysis -> validation)\n",
			counts[valtest.CatChain])
		fmt.Printf("  total: %d tests (paper: 'up to 500 tests in total')\n", suiteLen)
		fmt.Printf("  executed as %s: serial cost %v, wall cost %v (parallel standalone tests)\n",
			rec.RunID, rec.SerialCost.Round(time.Second), rec.WallCost.Round(time.Second))
	})
	b.ReportMetric(float64(suiteLen), "tests")
	b.ReportMetric(float64(counts[valtest.CatCompile]), "packages")
}

// ---------------------------------------------------------------------
// F3 — Figure 3: the HERA summary matrix (ZEUS, H1, HERMES across the
// five sp-system configurations), including the >300-runs bookkeeping
// claim exercised at reduced scale.

func BenchmarkFigure3HERAMatrix(b *testing.B) {
	var cells []bookkeep.Cell
	var totalRuns int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		for _, def := range experiments.All() {
			if err := sys.RegisterExperiment(scaledDef(def, 12, 300, 10)); err != nil {
				b.Fatal(err)
			}
		}
		exts := mustStdSet(b, sys)
		// Baselines on the experiments' original platform, then
		// adapt-and-validate across the remaining paper configurations —
		// the standard matrix plan, executed on the concurrent campaign
		// engine the way the sp-system's many clients worked the matrix.
		plan := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
			platform.PaperConfigs(), []*externals.Set{exts})
		sum, err := campaign.New(sys, runtime.NumCPU()).Run(plan)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range sum.Outcomes {
			if o.Err != nil {
				b.Fatalf("%s %v: %v", o.Cell.Experiment, o.Cell.Config, o.Err)
			}
		}
		// The paper's ">300 runs over sets of pre-defined tests": after the
		// migrations, nightly cron validation accumulates run history. One
		// client per experiment, ~100 simulated days.
		im, err := sys.ProvisionImage(platform.ReferenceConfig(), exts)
		if err != nil {
			b.Fatal(err)
		}
		var sched cron.Scheduler
		for _, exp := range sys.Experiments() {
			client, err := sys.AddClient("vm-"+exp, vmhost.VM, im.ID, "0 3 * * *")
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.ScheduleClient(&sched, client, exp, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.RunScheduled(&sched, sys.Clock.Now().AddDate(0, 0, 100)); err != nil {
			b.Fatal(err)
		}

		cells, err = sys.Matrix()
		if err != nil {
			b.Fatal(err)
		}
		totalRuns = sys.Book.TotalRuns()
		if _, err := sys.PublishReports("figure 3"); err != nil {
			b.Fatal(err)
		}
	}
	once("figure3", func() {
		fmt.Println("\n=== Figure 3: HERA validation summary matrix ===")
		fmt.Print(report.TextMatrix(cells))
		fmt.Printf("  validation runs recorded: %d (paper: >300 across the full campaign)\n", totalRuns)
	})
	b.ReportMetric(float64(len(cells)), "cells")
	b.ReportMetric(float64(totalRuns), "runs")
}

// ---------------------------------------------------------------------
// F3b — the campaign engine under parallelism: the same Figure 3 work
// matrix executed with one worker versus one worker per CPU. The
// bookkeeping totals (matrix cells and recorded runs) must be identical
// — per-experiment ordering barriers preserve the serial repository
// history — while the wall time drops with the worker count on
// multi-core hardware.

func BenchmarkCampaignParallelMatrix(b *testing.B) {
	type totals struct{ cells, runs int }
	runMatrix := func(b *testing.B, workers int) totals {
		var tt totals
		for i := 0; i < b.N; i++ {
			sys := core.New()
			for _, def := range experiments.All() {
				if err := sys.RegisterExperiment(scaledDef(def, 12, 300, 10)); err != nil {
					b.Fatal(err)
				}
			}
			exts := mustStdSet(b, sys)
			plan := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
				platform.PaperConfigs(), []*externals.Set{exts})
			sum, err := campaign.New(sys, workers).Run(plan)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range sum.Outcomes {
				if o.Err != nil {
					b.Fatalf("%s %v: %v", o.Cell.Experiment, o.Cell.Config, o.Err)
				}
			}
			tt = totals{cells: len(sum.Matrix), runs: sum.TotalRuns}
		}
		b.ReportMetric(float64(tt.cells), "cells")
		b.ReportMetric(float64(tt.runs), "runs")
		return tt
	}

	var serial, parallel totals
	b.Run("workers=1", func(b *testing.B) { serial = runMatrix(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.NumCPU()), func(b *testing.B) {
		parallel = runMatrix(b, runtime.NumCPU())
	})
	// When both variants ran (no -bench sub-filter), their bookkeeping
	// must agree exactly: parallelism may never change what was recorded.
	if serial != (totals{}) && parallel != (totals{}) && serial != parallel {
		b.Fatalf("bookkeeping diverged: workers=1 recorded %+v, workers=%d recorded %+v",
			serial, runtime.NumCPU(), parallel)
	}
	if serial != (totals{}) && parallel != (totals{}) {
		once("campaign-parallel", func() {
			fmt.Println("\n=== Campaign engine: serial vs parallel matrix ===")
			fmt.Printf("  matrix cells: %d, validation runs: %d — identical for workers=1 and workers=%d\n",
				serial.cells, serial.runs, runtime.NumCPU())
		})
	}
}

// ---------------------------------------------------------------------
// F3c — the storage axis of the Figure 3 matrix: the identical campaign
// recorded through the in-memory backend versus the durable on-disk
// content-addressed backend. Durability is the paper's core requirement
// ("all scripts and input files ... as well as all output files are
// kept"), and this benchmark prices it: the perf trajectory gains a
// storage dimension alongside the worker-count one.

func BenchmarkStoreBackends(b *testing.B) {
	runMatrix := func(b *testing.B, open func() (*storage.Store, error)) {
		var st storage.Stats
		for i := 0; i < b.N; i++ {
			store, err := open()
			if err != nil {
				b.Fatal(err)
			}
			sys := core.NewWith(store, platform.NewRegistry())
			for _, def := range experiments.All() {
				if err := sys.RegisterExperiment(scaledDef(def, 12, 300, 10)); err != nil {
					b.Fatal(err)
				}
			}
			exts := mustStdSet(b, sys)
			plan := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
				platform.PaperConfigs(), []*externals.Set{exts})
			sum, err := campaign.New(sys, runtime.NumCPU()).Run(plan)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range sum.Outcomes {
				if o.Err != nil {
					b.Fatalf("%s %v: %v", o.Cell.Experiment, o.Cell.Config, o.Err)
				}
			}
			st = store.Stats()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Blobs), "blobs")
		b.ReportMetric(float64(st.Bytes), "storedBytes")
	}

	b.Run("memory", func(b *testing.B) {
		runMatrix(b, func() (*storage.Store, error) { return storage.NewStore(), nil })
	})
	b.Run("disk", func(b *testing.B) {
		root := b.TempDir()
		n := 0
		runMatrix(b, func() (*storage.Store, error) {
			n++
			return storage.Open(filepath.Join(root, fmt.Sprintf("iter-%04d", n)))
		})
	})
}

// ---------------------------------------------------------------------
// SCRUB — archive-integrity throughput: the periodic bit-rot scrub
// (`spd -scrub`) re-reads and re-hashes every blob of a populated
// archive through the driver seam, recording the verdict as an
// ordinary run. SetBytes prices it as throughput over the archive
// size, which is the figure that matters for sizing a scrub cadence
// against a growing store.

func BenchmarkScrub(b *testing.B) {
	store := storage.NewStore()
	if _, _, err := runner.SynthesizeRuns(store, 200, runner.SynthOptions{}); err != nil {
		b.Fatal(err)
	}
	sys := core.NewWith(store, platform.NewRegistry())
	st := store.Stats()
	b.SetBytes(st.Bytes)
	b.ReportMetric(float64(st.Blobs), "blobs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := sys.Scrub(0, fmt.Sprintf("bench scrub cycle %d", i))
		if err != nil {
			b.Fatal(err)
		}
		if !rec.Passed() {
			b.Fatal("scrub reported corruption in a clean archive")
		}
	}
}

// ---------------------------------------------------------------------
// B1 — bookkeeping at production scale: the paper's ">300 runs" record
// grown to ~1000 runs, queried through the full-rescan Book (every
// query re-lists and re-loads all N records) versus the incremental
// bookkeep.Index (each record loaded once, queries answered from
// memory). The index is what lets spserve and a republishing campaign
// scale: an O(N) rescan per query is O(N²) per campaign.

// ---------------------------------------------------------------------
// F3d — incremental re-validation: the full Figure 3 campaign executed
// cold versus re-planned over an unchanged store. The planner skips
// every cell whose content-addressed input digest already has a green
// run, so the no-change case prices the steady state of the paper's
// continuously running, cron-driven system: what a daemon cycle costs
// when nothing moved. Both variants rebuild the system (repository
// generation included) each iteration, so the difference isolates
// execution avoided by planning.

func BenchmarkIncrementalCampaign(b *testing.B) {
	buildSystem := func(b *testing.B, store *storage.Store) (*core.SPSystem, []campaign.Cell) {
		b.Helper()
		sys := core.NewWith(store, platform.NewRegistry())
		for _, def := range experiments.All() {
			if err := sys.RegisterExperiment(scaledDef(def, 12, 300, 10)); err != nil {
				b.Fatal(err)
			}
		}
		exts := mustStdSet(b, sys)
		cells := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
			platform.PaperConfigs(), []*externals.Set{exts})
		return sys, cells
	}
	runPlanned := func(b *testing.B, store *storage.Store) *campaign.Summary {
		b.Helper()
		sys, cells := buildSystem(b, store)
		eng := campaign.New(sys, runtime.NumCPU())
		plan, err := eng.Plan(cells)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := eng.RunPlan(plan)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range sum.Outcomes {
			if o.Err != nil {
				b.Fatalf("%s %v: %v", o.Cell.Experiment, o.Cell.Config, o.Err)
			}
		}
		return sum
	}

	b.Run("full", func(b *testing.B) {
		var runs int
		for i := 0; i < b.N; i++ {
			sum := runPlanned(b, storage.NewStore())
			runs = sum.CampaignRuns()
		}
		b.ReportMetric(float64(runs), "runs")
	})
	b.Run("nochange", func(b *testing.B) {
		seeded := storage.NewStore()
		if sum := runPlanned(b, seeded); sum.CampaignRuns() == 0 {
			b.Fatal("seeding campaign executed nothing")
		}
		b.ResetTimer()
		var skipped int
		for i := 0; i < b.N; i++ {
			sum := runPlanned(b, seeded)
			if sum.CampaignRuns() != 0 {
				b.Fatalf("no-change re-campaign executed %d runs", sum.CampaignRuns())
			}
			skipped = sum.Skipped()
		}
		b.ReportMetric(float64(skipped), "skipped_cells")
		once("incremental-campaign", func() {
			fmt.Printf("\n=== Incremental campaign: no-change re-plan skips all %d cells, 0 runs ===\n", skipped)
		})
	})
}

func BenchmarkBookkeepIndex(b *testing.B) {
	const nRuns = 1000
	store := storage.NewStore()
	exps := []string{"H1", "ZEUS", "HERMES"}
	for i := 1; i <= nRuns; i++ {
		rec := runner.RunRecord{
			RunID:       fmt.Sprintf("run-%04d", i),
			Description: "bench campaign",
			Experiment:  exps[i%len(exps)],
			Config:      fmt.Sprintf("SL%d/64bit", 5+(i/400)),
			Externals:   "ROOT-5.34",
			Timestamp:   int64(1356998400 + i),
		}
		for j := 0; j < 8; j++ {
			out := valtest.OutcomePass
			if i%5 == 0 && j == 3 { // every fifth run regresses one test
				out = valtest.OutcomeFail
			}
			rec.Jobs = append(rec.Jobs, runner.JobRecord{
				JobID:  fmt.Sprintf("job-%06d", i*8+j),
				RunID:  rec.RunID,
				Result: valtest.Result{Test: fmt.Sprintf("t%02d", j), Outcome: out},
			})
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.Put(runner.RunsNS, rec.RunID, data); err != nil {
			b.Fatal(err)
		}
	}

	// One status-page query: the matrix plus the latest run's diff
	// baseline — what every spserve page view or per-run republish asks.
	var cells int
	b.Run("rescan", func(b *testing.B) {
		book := bookkeep.New(store)
		for i := 0; i < b.N; i++ {
			m, err := book.Matrix()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := book.LastSuccessful("H1", ""); err != nil {
				b.Fatal(err)
			}
			cells = len(m)
		}
		b.ReportMetric(float64(cells), "cells")
	})
	b.Run("index", func(b *testing.B) {
		x, err := bookkeep.BuildIndex(store) // one-time load, amortized over the campaign
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Refresh(); err != nil { // steady-state catch-up is part of the query cost
				b.Fatal(err)
			}
			m := x.Matrix()
			if _, err := x.LastSuccessful("H1", ""); err != nil {
				b.Fatal(err)
			}
			cells = len(m)
		}
		b.ReportMetric(float64(cells), "cells")
	})
	once("bookkeepindex", func() {
		fmt.Printf("\n=== bookkeeping at %d runs: full rescan vs incremental index ===\n", nRuns)
		fmt.Printf("  matrix cells: %d (see ns/op above: the index answers from memory)\n", cells)
	})
}

// ---------------------------------------------------------------------
// C1 — §2 claim: active migration substantially extends the lifetime of
// the software and data compared to freezing.

func BenchmarkClaimFreezeVsMigrate(b *testing.B) {
	var frozen, migrated *lifetime.Outcome
	for i := 0; i < b.N; i++ {
		reg := lifetime.ExtendedRegistry()
		sys := core.NewWithRegistry(reg)
		def := scaledDef(experiments.H1(), 15, 400, 10)
		def.RepoSpec.LegacyFraction = 0.4
		def.RepoSpec.DefectRate = 0.05
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		params := lifetime.DefaultParams(exts)
		planner, err := sys.Planner("H1")
		if err != nil {
			b.Fatal(err)
		}
		frozen, migrated, err = lifetime.Compare(params, reg, planner)
		if err != nil {
			b.Fatal(err)
		}
	}
	once("claim-lifetime", func() {
		fmt.Println("\n=== Claim (§2): freeze vs adapt-and-validate, 2013–2030 ===")
		fmt.Println("  year  freeze(os, usability)   migrate(os, usability)")
		for i := range frozen.Points {
			f, m := frozen.Points[i], migrated.Points[i]
			fmt.Printf("  %d  %-5s %4.2f              %-5s %4.2f\n", f.Year, f.OS, f.Usability, m.OS, m.Usability)
		}
		fmt.Printf("  usable years: freeze=%.1f migrate=%.1f; cost: %d migrations, %d interventions\n",
			frozen.UsableYears, migrated.UsableYears, migrated.TotalMigrations, migrated.TotalInterventions)
	})
	if migrated.UsableYears <= frozen.UsableYears {
		b.Fatal("migration did not extend lifetime — claim shape broken")
	}
	b.ReportMetric(frozen.UsableYears, "freezeYears")
	b.ReportMetric(migrated.UsableYears, "migrateYears")
	b.ReportMetric(migrated.UsableYears/frozen.UsableYears, "extension")
}

// ---------------------------------------------------------------------
// C2 — §3.3 claim: the tests "identified and helped to solve several
// long-standing bugs" during the SL6/64-bit migration.

func BenchmarkClaimBugDiscovery(b *testing.B) {
	var bugs int
	var kinds map[string]int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 30, 800, 20)
		def.RepoSpec.LegacyFraction = 0.3
		def.RepoSpec.DefectRate = 0.10 // defect-rich legacy code base
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		if _, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline"); err != nil {
			b.Fatal(err)
		}
		sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
		rep, err := sys.MigrateExperiment("H1", sl6, exts, "SL6 migration")
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Succeeded {
			b.Fatal("migration did not converge")
		}
		bugs = 0
		kinds = make(map[string]int)
		for _, it := range rep.Iterations {
			for _, iv := range it.Interventions {
				for _, tr := range iv.Patch.Remove {
					switch tr {
					case platform.TraitUninitMemory, platform.TraitPtrIntCast, platform.TraitStrictAliasing:
						bugs++
						kinds[tr.String()]++
					}
				}
			}
		}
	}
	once("claim-bugs", func() {
		fmt.Println("\n=== Claim (§3.3): long-standing bugs uncovered by the SL6/64-bit migration ===")
		fmt.Printf("  latent defects found and fixed: %d\n", bugs)
		for kind, n := range kinds {
			fmt.Printf("    %-16s %d\n", kind, n)
		}
	})
	if bugs == 0 {
		b.Fatal("no long-standing bugs discovered — claim shape broken")
	}
	b.ReportMetric(float64(bugs), "bugsFound")
}

// ---------------------------------------------------------------------
// C3 — §3.1 claim: new client machines integrate with only common
// storage access and a cron job.

func BenchmarkClaimClientScalability(b *testing.B) {
	sys := core.New()
	exts := mustStdSet(b, sys)
	im, err := sys.ProvisionImage(platform.ReferenceConfig(), exts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("wn-%06d", i)
		kind := vmhost.VM
		if i%2 == 1 {
			kind = vmhost.Physical // grid worker nodes integrate identically
		}
		if _, err := sys.AddClient(name, kind, im.ID, "0 3 * * *"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("claim-clients", func() {
		fmt.Println("\n=== Claim (§3.1): client integration requirements ===")
		fmt.Printf("  clients attached: %d (VMs and physical worker nodes)\n", len(sys.Host.Clients()))
		fmt.Println("  per-client requirements: common storage access + one cron entry — nothing else")
	})
	b.ReportMetric(2, "requirements/client")
}

// ---------------------------------------------------------------------
// C4 — §3.3 claim: every run is reproducible from its kept inputs.

func BenchmarkClaimRunReproducibility(b *testing.B) {
	var identical, compared int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 12, 500, 10)
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		first, err := sys.Validate("H1", platform.ReferenceConfig(), exts, "original")
		if err != nil {
			b.Fatal(err)
		}
		second, err := sys.Validate("H1", platform.ReferenceConfig(), exts, "replay")
		if err != nil {
			b.Fatal(err)
		}
		// Every kept output artifact of the replay must be bit-identical
		// to the original's (same storage hash).
		identical, compared = 0, 0
		for _, j2 := range second.Jobs {
			j1, ok := first.Find(j2.Result.Test)
			if !ok || j1.Result.OutputKey == "" || j2.Result.OutputKey == "" {
				continue
			}
			ns := "files"
			if j2.Result.Category == valtest.CatCompile {
				ns = "artifacts"
			}
			h1, err1 := sys.Store.Hash(ns, j1.Result.OutputKey)
			h2, err2 := sys.Store.Hash(ns, j2.Result.OutputKey)
			if err1 != nil || err2 != nil {
				continue
			}
			compared++
			if h1 == h2 {
				identical++
			}
		}
		if compared == 0 || identical != compared {
			b.Fatalf("replay not bit-identical: %d/%d artifacts matched", identical, compared)
		}
	}
	once("claim-repro", func() {
		fmt.Println("\n=== Claim (§3.3): reproducibility of previous results ===")
		fmt.Printf("  replayed run artifacts bit-identical to originals: %d/%d\n", identical, compared)
		fmt.Println("  (job environments, inputs and outputs are all kept on the common storage)")
	})
	b.ReportMetric(float64(identical), "identicalArtifacts")
}

// ---------------------------------------------------------------------
// C5 — §3.3: "The next challenges include the testing of the SL7
// environment and checking the compatibility of the experiments software
// with ROOT 6."

func BenchmarkClaimNextChallengesSL7ROOT6(b *testing.B) {
	var rep *migrateReport
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 25, 600, 15)
		def.RepoSpec.LegacyFraction = 0.4
		def.RepoSpec.DefectRate = 0.05
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		if _, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline"); err != nil {
			b.Fatal(err)
		}
		// The target: SL7 with gcc 4.8 and ROOT 6 (which drops the v5 I/O
		// layer and requires C++11); CERNLIB and MCGen stay installed.
		root6, err := sys.Catalogue.Get(externals.ROOT, "6.02")
		if err != nil {
			b.Fatal(err)
		}
		cern, err := sys.Catalogue.Get(externals.CERNLIB, "2006")
		if err != nil {
			b.Fatal(err)
		}
		mc, err := sys.Catalogue.Get(externals.MCGen, "1.4")
		if err != nil {
			b.Fatal(err)
		}
		sl7 := platform.Config{OS: "SL7", Arch: platform.X8664, Compiler: "gcc4.8"}
		r, err := sys.MigrateExperiment("H1", sl7, externals.MustSet(root6, cern, mc), "SL7 + ROOT 6")
		if err != nil {
			b.Fatal(err)
		}
		if !r.Succeeded {
			b.Fatal("SL7/ROOT6 migration did not converge")
		}
		rep = &migrateReport{
			iterations:    len(r.Iterations),
			interventions: r.TotalInterventions(),
			ports:         0,
		}
		for _, it := range r.Iterations {
			for _, iv := range it.Interventions {
				if len(iv.Patch.ReplaceAPIs) > 0 {
					rep.ports++
				}
			}
		}
	}
	once("claim-next", func() {
		fmt.Println("\n=== Claim (§3.3): the next challenges — SL7 and ROOT 6 ===")
		fmt.Printf("  migration to SL7/64bit gcc4.8 with ROOT 6.02 converged in %d iterations\n", rep.iterations)
		fmt.Printf("  interventions: %d total, of which %d were ROOT 5 -> ROOT 6 I/O ports\n",
			rep.interventions, rep.ports)
	})
	b.ReportMetric(float64(rep.interventions), "interventions")
	b.ReportMetric(float64(rep.ports), "apiPorts")
}

// migrateReport summarizes a campaign for the next-challenges bench.
type migrateReport struct {
	iterations    int
	interventions int
	ports         int
}

// ---------------------------------------------------------------------
// A1 — Ablation: diff-vs-last-success failure attribution versus naive
// failure reporting.

func BenchmarkAblationDiffAttribution(b *testing.B) {
	var withDiff, naive int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 15, 400, 10)
		def.RepoSpec.LegacyFraction = 0.5
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		if _, err := sys.Validate("H1", platform.OriginalConfig(), exts, "baseline"); err != nil {
			b.Fatal(err)
		}
		sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}
		rec, err := sys.Validate("H1", sl6, exts, "failing migration attempt")
		if err != nil {
			b.Fatal(err)
		}
		if rec.Passed() {
			b.Fatal("expected failures on SL6")
		}
		// With the paper's design: the diff isolates the changed input.
		_, attr, err := sys.Diagnose(rec)
		if err != nil {
			b.Fatal(err)
		}
		withDiff = 1 // one candidate cause
		if attr != bookkeep.AttrOS {
			b.Fatalf("attribution = %v, want os", attr)
		}
		// Naive ablation: only the failing run is known; all three input
		// categories are candidate causes and must be investigated.
		naive = 3
	}
	once("ablation-diff", func() {
		fmt.Println("\n=== Ablation A1: failure attribution ===")
		fmt.Printf("  candidate causes to investigate per failure: diff-vs-last-success=%d, naive=%d\n",
			withDiff, naive)
	})
	b.ReportMetric(float64(naive)/float64(withDiff), "searchReduction")
}

// ---------------------------------------------------------------------
// A2 — Ablation: build cache (tar-ball reuse) versus full rebuilds.

func BenchmarkAblationBuildCache(b *testing.B) {
	var coldCost, warmCost time.Duration
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 40, 300, 5)
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		st, _ := sys.Experiment("H1")

		sys.Builder.UseCache = true
		cold, err := sys.Builder.Build(st.Repo, platform.ReferenceConfig(), exts)
		if err != nil {
			b.Fatal(err)
		}
		warm, err := sys.Builder.Build(st.Repo, platform.ReferenceConfig(), exts)
		if err != nil {
			b.Fatal(err)
		}
		coldCost, warmCost = cold.Cost, warm.Cost
		if warmCost >= coldCost {
			b.Fatal("cache provided no speedup")
		}
	}
	once("ablation-cache", func() {
		fmt.Println("\n=== Ablation A2: build cache ===")
		fmt.Printf("  cold build (40 packages): %v simulated compile time\n", coldCost.Round(time.Millisecond))
		fmt.Printf("  warm rebuild with tar-ball reuse: %v\n", warmCost.Round(time.Millisecond))
	})
	b.ReportMetric(coldCost.Seconds()-warmCost.Seconds(), "savedSimSeconds")
}

// ---------------------------------------------------------------------
// A3 — Ablation: parallel standalone tests + sequential chains versus a
// fully sequential runner.

func BenchmarkAblationParallelScheduling(b *testing.B) {
	var serial, wall time.Duration
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 12, 400, 64)
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		exts := mustStdSet(b, sys)
		sys.Runner.Workers = 8
		rec, err := sys.Validate("H1", platform.ReferenceConfig(), exts, "parallel scheduling")
		if err != nil {
			b.Fatal(err)
		}
		serial, wall = rec.SerialCost, rec.WallCost
		if wall > serial {
			b.Fatal("wall cost exceeds serial cost")
		}
	}
	once("ablation-parallel", func() {
		fmt.Println("\n=== Ablation A3: test scheduling ===")
		fmt.Printf("  fully sequential execution: %v\n", serial.Round(time.Millisecond))
		fmt.Printf("  parallel standalone + sequential chains (8 workers): %v\n", wall.Round(time.Millisecond))
	})
	if wall > 0 {
		b.ReportMetric(float64(serial)/float64(wall), "speedup")
	}
}

// ---------------------------------------------------------------------
// A4 — Ablation: the separation of the three inputs (Figure 1) versus a
// monolithic environment, measured as attribution precision.

func BenchmarkAblationInputSeparation(b *testing.B) {
	var separated, monolithic int
	for i := 0; i < b.N; i++ {
		sys := core.New()
		def := scaledDef(experiments.H1(), 15, 400, 10)
		def.RepoSpec.LegacyFraction = 0.5
		if err := sys.RegisterExperiment(def); err != nil {
			b.Fatal(err)
		}
		cat := sys.Catalogue
		root526, err := cat.Get(externals.ROOT, "5.26")
		if err != nil {
			b.Fatal(err)
		}
		root534, err := cat.Get(externals.ROOT, "5.34")
		if err != nil {
			b.Fatal(err)
		}
		cern, err := cat.Get(externals.CERNLIB, "2006")
		if err != nil {
			b.Fatal(err)
		}
		mc, err := cat.Get(externals.MCGen, "1.4")
		if err != nil {
			b.Fatal(err)
		}
		oldExts := externals.MustSet(root526, cern, mc)
		newExts := externals.MustSet(root534, cern, mc)

		if _, err := sys.Validate("H1", platform.OriginalConfig(), oldExts, "baseline"); err != nil {
			b.Fatal(err)
		}
		sl6 := platform.Config{OS: "SL6", Arch: platform.X8664, Compiler: "gcc4.4"}

		// Separated inputs: change the OS first (externals fixed) — the
		// failing run is attributed precisely.
		recOS, err := sys.Validate("H1", sl6, oldExts, "os change only")
		if err != nil {
			b.Fatal(err)
		}
		separated = 0
		if !recOS.Passed() {
			if _, attr, err := sys.Diagnose(recOS); err == nil && attr == bookkeep.AttrOS {
				separated++
			}
		}
		// Monolithic ablation: OS and externals bumped together — the
		// diff cannot isolate the culprit.
		recBoth, err := sys.Validate("H1", sl6, newExts, "monolithic environment bump")
		if err != nil {
			b.Fatal(err)
		}
		monolithic = 0
		if !recBoth.Passed() {
			if _, attr, err := sys.Diagnose(recBoth); err == nil && attr == bookkeep.AttrMixed {
				monolithic++
			}
		}
	}
	once("ablation-separation", func() {
		fmt.Println("\n=== Ablation A4: input separation (Figure 1) ===")
		fmt.Printf("  precise attributions with separated inputs: %d/1 (os isolated)\n", separated)
		fmt.Printf("  monolithic environment bump: attribution degrades to 'mixed' (%d/1 ambiguous)\n", monolithic)
	})
	b.ReportMetric(float64(separated), "preciseAttr")
	b.ReportMetric(float64(monolithic), "ambiguousAttr")
}
