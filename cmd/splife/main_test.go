package main

import "testing"

// TestRunShortHorizon drives the full freeze-vs-migrate comparison over
// a shortened horizon — the command's single main path.
func TestRunShortHorizon(t *testing.T) {
	if err := run(2017, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBar(t *testing.T) {
	if got := bar(1.0); got != "##########" {
		t.Fatalf("bar(1.0) = %q", got)
	}
	if got := bar(0); got != "" {
		t.Fatalf("bar(0) = %q", got)
	}
}
