package main

import (
	"testing"

	"repro/internal/storage"
)

// TestRunShortHorizon drives the full freeze-vs-migrate comparison over
// a shortened horizon — the command's single main path.
func TestRunShortHorizon(t *testing.T) {
	if err := run(2017, 2, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunRecordsOntoDiskStore points the study at a durable store and
// checks the validation runs it performed were actually persisted.
func TestRunRecordsOntoDiskStore(t *testing.T) {
	dir := t.TempDir()
	if err := run(2016, 2, dir); err != nil {
		t.Fatal(err)
	}
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if runs := store.List("runs"); len(runs) == 0 {
		t.Fatal("no runs persisted to the disk store")
	}
}

func TestBar(t *testing.T) {
	if got := bar(1.0); got != "##########" {
		t.Fatalf("bar(1.0) = %q", got)
	}
	if got := bar(0); got != "" {
		t.Fatalf("bar(0) = %q", got)
	}
}
