// Command splife runs the long-term preservation-strategy comparison:
// freezing the environment versus the sp-system's adapt-and-validate
// migration, over a multi-year horizon of OS releases and end-of-life
// dates. It prints the per-year usability of both strategies — the
// quantitative form of the paper's claim that active migration
// "substantially extend[s] the lifetime of the software, and hence of
// the usability of the data".
//
// Usage:
//
//	splife [-end 2030] [-grace 4] [-store DIR]
//
// With -store DIR the study's validation runs are recorded onto the
// durable on-disk common storage at DIR (shared with spsys/spreport)
// instead of process memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifetime"
	"repro/internal/storage"
	"repro/internal/swrepo"
)

func main() {
	endYear := flag.Int("end", 2030, "horizon end year")
	grace := flag.Float64("grace", 4, "years a frozen platform stays usable past vendor EOL")
	storeDir := flag.String("store", "", "directory of the durable on-disk common storage (default: in-memory)")
	flag.Parse()

	if err := run(*endYear, *grace, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "splife:", err)
		os.Exit(1)
	}
}

func run(endYear int, grace float64, storeDir string) (err error) {
	reg := lifetime.ExtendedRegistry()
	store, err := storage.OpenOrMemory(storeDir)
	if err != nil {
		return err
	}
	// Close performs the disk backend's final journal sync; its failure
	// means the recorded runs may not be durable and must surface.
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	sys := core.NewWith(store, reg)

	def := experiments.H1()
	def.RepoSpec.Packages = 20 // scaled for a fast CLI run
	def.RepoSpec = withModerateHazards(def.RepoSpec)
	def.ChainEvents = 500
	def.StandaloneTests = 20
	if err := sys.RegisterExperiment(def); err != nil {
		return err
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		return err
	}

	params := lifetime.DefaultParams(exts)
	params.End = time.Date(endYear, 1, 1, 0, 0, 0, 0, time.UTC)
	params.GraceYears = grace

	planner, err := sys.Planner("H1")
	if err != nil {
		return err
	}
	frozen, migrated, err := lifetime.Compare(params, reg, planner)
	if err != nil {
		return err
	}

	fmt.Printf("preservation strategies for H1 software, %d–%d (grace %.0fy)\n\n",
		params.Start.Year(), endYear, grace)
	fmt.Println("YEAR  FREEZE                      MIGRATE")
	fmt.Println("      os    usability             os    usability  interventions")
	for i := range frozen.Points {
		f, m := frozen.Points[i], migrated.Points[i]
		fmt.Printf("%d  %-5s %4.2f %-15s  %-5s %4.2f       %d\n",
			f.Year, f.OS, f.Usability, bar(f.Usability), m.OS, m.Usability, m.Interventions)
	}
	fmt.Printf("\nusable years: freeze=%.1f migrate=%.1f (×%.1f)\n",
		frozen.UsableYears, migrated.UsableYears, migrated.UsableYears/frozen.UsableYears)
	if frozen.LostIn > 0 {
		fmt.Printf("frozen stack unusable from %d; migrating stack ", frozen.LostIn)
		if migrated.LostIn == 0 {
			fmt.Println("survived the whole horizon")
		} else {
			fmt.Printf("lost in %d\n", migrated.LostIn)
		}
	}
	fmt.Printf("migration cost: %d migrations, %d interventions\n",
		migrated.TotalMigrations, migrated.TotalInterventions)
	return nil
}

func bar(u float64) string {
	n := int(u*10 + 0.5)
	return strings.Repeat("#", n)
}

// withModerateHazards keeps enough legacy code and defects in the
// repository that migrations are non-trivial without being hopeless.
func withModerateHazards(spec swrepo.GenSpec) swrepo.GenSpec {
	spec.LegacyFraction = 0.4
	spec.DefectRate = 0.05
	spec.SensitiveFraction = 0.1
	return spec
}
