package main

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bookkeep"
	"repro/internal/storage"
)

// TestStoreSyncCommand replicates a synthesized store into a fresh
// directory through the CLI, verifies the replica answers the same
// bookkeeping queries, and that a second pass is the no-op the sync
// contract promises.
func TestStoreSyncCommand(t *testing.T) {
	srcDir := filepath.Join(t.TempDir(), "primary")
	dstDir := filepath.Join(t.TempDir(), "replica")
	if err := runStore([]string{"synth", "-runs", "40", "-store", srcDir}); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return runStore([]string{"sync", srcDir, dstDir})
	})
	if !strings.Contains(out, "synced") || strings.Contains(out, "0 blobs (0 bytes), 0 bindings") {
		t.Fatalf("first sync output does not account for the transfer:\n%s", out)
	}

	again := captureStdout(t, func() error {
		return runStore([]string{"sync", srcDir, dstDir})
	})
	if !strings.Contains(again, "0 blobs (0 bytes), 0 bindings") {
		t.Fatalf("re-sync is not a no-op:\n%s", again)
	}

	replica, err := storage.OpenReadOnly(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	x, err := bookkeep.BuildIndex(replica)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 40 {
		t.Fatalf("replica indexes %d runs, want 40", x.TotalRuns())
	}
}

// TestStoreSyncFromURL pulls from a served store — the cross-site
// form — and verifies the inspection commands accept the same URL as
// -store.
func TestStoreSyncFromURL(t *testing.T) {
	srcDir := filepath.Join(t.TempDir(), "primary")
	dstDir := filepath.Join(t.TempDir(), "replica")
	if err := runStore([]string{"synth", "-runs", "15", "-store", srcDir}); err != nil {
		t.Fatal(err)
	}
	src, err := storage.OpenReadOnly(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ts := httptest.NewServer(http.StripPrefix("/api/v1", storage.NewAPIHandler(src, nil)))
	defer ts.Close()

	if err := runStore([]string{"sync", ts.URL, dstDir}); err != nil {
		t.Fatal(err)
	}
	replica, err := storage.OpenReadOnly(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	x, err := bookkeep.BuildIndex(replica)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 15 {
		t.Fatalf("replica indexes %d runs after URL sync, want 15", x.TotalRuns())
	}

	// The inspection commands read the served store directly.
	if err := runRuns([]string{"-store", ts.URL, "-limit", "5"}); err != nil {
		t.Fatalf("runs over URL store: %v", err)
	}
	if err := runMatrix([]string{"-store", ts.URL}); err != nil {
		t.Fatalf("matrix over URL store: %v", err)
	}
	if err := runStore([]string{"stats", "-store", ts.URL}); err != nil {
		t.Fatalf("store stats over URL store: %v", err)
	}
}

// TestStoreSyncUsage rejects malformed invocations.
func TestStoreSyncUsage(t *testing.T) {
	if err := runStore([]string{"sync"}); err == nil {
		t.Fatal("sync with no args succeeded")
	}
	if err := runStore([]string{"sync", "a"}); err == nil {
		t.Fatal("sync with one arg succeeded")
	}
	if err := runStore([]string{"sync", t.TempDir(), "http://example.invalid"}); err == nil {
		t.Fatal("sync into a URL succeeded")
	}
	if err := runStore([]string{"sync", "http://127.0.0.1:1", filepath.Join(t.TempDir(), "d")}); err == nil {
		t.Fatal("sync from an unreachable URL succeeded")
	}
}
