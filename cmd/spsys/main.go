// Command spsys drives the sp-system validation framework from the
// command line: register the HERA experiments, run validation campaigns
// over the paper's configuration matrix, migrate experiments to new
// platforms, and inspect the bookkeeping.
//
// Usage:
//
//	spsys campaign  [-quick] [-workers N] [-save FILE] [-store DIR] [-dry-run] [-force]
//	                run the full Figure 3 campaign, incrementally: cells
//	                whose content-addressed input digest already has a
//	                green run are skipped, so an unchanged re-campaign
//	                executes zero builds and zero runs
//	spsys validate  -experiment H1 -config "SL6/64bit gcc4.4" [-root 5.34] [-store DIR]
//	spsys migrate   -experiment H1 -config "SL6/64bit gcc4.4" [-root 5.34] [-store DIR]
//	spsys matrix    [-save FILE] [-store DIR]    print the status matrix
//	spsys runs      [-store DIR] [-limit N] [-after RUN] [-experiment E]
//	                list recorded runs, paged (default 500 per page; the
//	                trailer prints the -after cursor for the next page)
//	spsys store     stats|compact|synth|sync|corrupt — storage
//	                administration: stats prints snapshot/journal/blob
//	                figures (read-only, works beside a live writer),
//	                compact folds the name journal into a names.snapshot
//	                so reopening the store is O(appends since
//	                compaction), synth appends synthetic run records for
//	                scaling smoke tests, sync SRC DST replicates one
//	                store into another (either a directory or an spserve
//	                URL as SRC; a directory as DST) — idempotent,
//	                resumable, moving only what DST lacks — and corrupt
//	                flips one byte of one blob: controlled bit rot for
//	                exercising scrub detection (`spd -scrub`)
//
// Every subcommand accepts -store DIR: the common sp-system storage is
// then the durable on-disk store rooted at DIR instead of process
// memory, so everything the command records — runs, job environments,
// artifacts, counters, status pages — survives the process and is
// readable by any later invocation sharing the directory (for example
// `spreport -store DIR`, which renders the status site from it, or
// `spserve -store DIR`, which serves it live). The recording
// subcommands (campaign, validate, migrate) take the store's exclusive
// writer lock; the inspection subcommands (runs, matrix, history) open
// the shared-lock read-only view instead, so they work while a
// campaign is running and can never mutate the recorded bookkeeping.
// The inspection commands also accept an http(s) URL as -store, in
// which case they read a remote store through another spserve's
// /api/v1/ store API instead of a local directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/bookkeep"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cron"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "campaign":
		err = runCampaign(args)
	case "validate":
		err = runValidate(args)
	case "migrate":
		err = runMigrate(args)
	case "matrix":
		err = runMatrix(args)
	case "runs":
		err = runRuns(args)
	case "history":
		err = runHistory(args)
	case "store":
		err = runStore(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsys:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spsys <command> [flags]

commands:
  campaign   run the full HERA campaign over the paper's configurations
             (incremental: up-to-date cells are skipped; -dry-run prints
             the plan, -force re-executes everything)
  validate   one validation run of an experiment on a configuration
  migrate    adapt-and-validate migration campaign
  matrix     print the Figure 3 status matrix
  runs       list recorded validation runs (paged: -limit/-after)
  history    show one test's outcomes across a quick campaign
  store      admin operations on the on-disk storage:
               store stats   -store DIR   snapshot/journal/blob figures
               store compact -store DIR   fold the journal into a snapshot
               store synth   -store DIR -runs N   append synthetic records
               store sync    SRC DST      replicate SRC (directory or
                                          spserve URL) into directory DST
               store corrupt -store DIR   flip one blob byte (bit rot,
                                          for scrub exercises)
               store leases  -store DIR   distributed campaign's cell
                                          lease ledger (held/expired/
                                          done, per-worker progress)

every command accepts -store DIR to record onto (and read back from)
the durable on-disk common storage at DIR instead of process memory;
inspection commands also take -store http://HOST:PORT to read a store
served by spserve`)
}

// storeFlag registers the -store flag on a subcommand's flag set.
func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "", "directory of the durable on-disk common storage (default: in-memory)")
}

// openInspect opens the common storage for a read-only inspection
// command (runs, matrix, history). With -store DIR it returns the
// shared-lock read view — which attaches even while a live `spsys
// campaign -store` process holds the exclusive writer lock, and cannot
// mutate the recorded bookkeeping; with -store http(s)://... it
// returns the remote view over another spserve's store API. Without
// -store it returns a fresh in-memory store; recorded reports whether
// a recorded store was opened (in which case the caller must not run
// demo workloads).
func openInspect(storeDir string) (store *storage.Store, recorded bool, err error) {
	if storeDir == "" {
		return storage.NewStore(), false, nil
	}
	store, err = storage.OpenView(storeDir)
	return store, true, err
}

// closeStore propagates a store Close failure into the command's
// error: on the disk backend, Close performs the final journal sync, so
// a failure there means recorded bookkeeping may not be durable and
// must not exit 0.
func closeStore(store *storage.Store, retErr *error) {
	if cerr := store.Close(); cerr != nil && *retErr == nil {
		*retErr = cerr
	}
}

// newSystem builds an SPSystem over the given common storage with all
// three HERA experiments registered, optionally scaled down for quick
// runs. The shared core.NewHERA constructor keeps spsys and spd
// registering digest-identical suites over shared stores.
func newSystem(quick bool, store *storage.Store) (*core.SPSystem, error) {
	return core.NewHERA(store, quick)
}

func externalSet(sys *core.SPSystem, rootVersion string) (*externals.Set, error) {
	root, err := sys.Catalogue.Get(externals.ROOT, rootVersion)
	if err != nil {
		return nil, err
	}
	cern, err := sys.Catalogue.Get(externals.CERNLIB, "2006")
	if err != nil {
		return nil, err
	}
	mc, err := sys.Catalogue.Get(externals.MCGen, "1.4")
	if err != nil {
		return nil, err
	}
	return externals.NewSet(root, cern, mc)
}

func saveSnapshot(sys *core.SPSystem, path string) error {
	if path == "" {
		return nil
	}
	data, err := sys.Store.Snapshot()
	if err != nil {
		return err
	}
	//spvet:allow storewrite — the snapshot lands at a user-chosen export path, not in a store
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("storage snapshot written to %s (%d bytes)\n", path, len(data))
	return nil
}

func runCampaign(args []string) (err error) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	quick := fs.Bool("quick", false, "scale workloads down for a fast demonstration")
	save := fs.String("save", "", "write a storage snapshot to this file afterwards")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent campaign workers")
	dryRun := fs.Bool("dry-run", false, "print the computed plan (cell -> run/skip + reason) without executing")
	force := fs.Bool("force", false, "execute every cell even when the recorded state is up-to-date")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A dry run never writes: against a recorded store it attaches
	// through the shared-lock read-only view, so it works (and is safe)
	// while a live campaign or daemon holds the writer lock.
	var store *storage.Store
	if *dryRun {
		store, _, err = openInspect(*storeDir)
	} else {
		store, err = storage.OpenOrMemory(*storeDir)
	}
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(*quick, store)
	if err != nil {
		return err
	}
	exts, err := externalSet(sys, "5.34")
	if err != nil {
		return err
	}

	// The full matrix — baseline captures on the experiments' original
	// platform, then adapt-and-validate migrations across the remaining
	// paper configurations — planned against the recorded state, then
	// executed on the concurrent campaign engine.
	cells := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
		platform.PaperConfigs(), []*externals.Set{exts})
	eng := campaign.New(sys, *workers)
	// -force never consults the recorded state, so skip the index build
	// a real plan pays; -dry-run then previews exactly the forced plan
	// the same flags would execute.
	var plan *campaign.Plan
	if *force {
		plan, err = eng.ForcePlan(cells)
	} else {
		plan, err = eng.Plan(cells)
	}
	if err != nil {
		return err
	}
	if *dryRun {
		fmt.Print(plan.Render())
		return nil
	}
	if err := plan.Store(sys.Store); err != nil {
		return err
	}
	fmt.Printf("campaign: %d cells (%d to run, %d up-to-date) on %d workers\n",
		len(plan.Cells), plan.RunCount(), plan.SkipCount(), *workers)
	sum, err := eng.RunPlan(plan)
	if err != nil {
		return err
	}
	var cellErrs int
	skipped := make(map[string]bool) // campaign.CellKey of skipped cells
	for _, o := range sum.Outcomes {
		switch {
		case o.Err != nil:
			cellErrs++
			fmt.Printf("%-7s %v: error: %v\n", o.Cell.Experiment, o.Cell.Config, o.Err)
		case o.Skipped:
			skipped[o.Cell.Label()] = true
			fmt.Printf("%-7s %v: skipped: up-to-date (%s)\n", o.Cell.Experiment, o.Cell.Config, o.RunID)
		case o.Cell.Mode == campaign.ModeMigrate:
			fmt.Printf("%-7s %v: converged=%t iterations=%d interventions=%d\n",
				o.Cell.Experiment, o.Cell.Config, o.Passed, len(o.Report.Iterations),
				o.Report.TotalInterventions())
		default:
			fmt.Printf("%-7s baseline %s: passed=%t jobs=%d\n",
				o.Cell.Experiment, o.RunID, o.Passed, len(o.Record.Jobs))
		}
	}

	planned := make(map[string]bool)
	for _, pc := range plan.Cells {
		planned[pc.Cell.Label()] = true
	}
	fmt.Println()
	fmt.Print(report.TextMatrixNoted(sum.Matrix, func(c bookkeep.Cell) string {
		key := campaign.CellKey(c.Experiment, c.Config, c.Externals)
		switch {
		case skipped[key]:
			return "up-to-date"
		case planned[key]:
			return "revalidated"
		default:
			return "" // recorded outside this campaign's matrix
		}
	}))
	fmt.Printf("\ntotal validation runs: %d (%d from this campaign, %d cells skipped as up-to-date, %d cells failed)\n",
		sum.TotalRuns, sum.CampaignRuns(), sum.Skipped(), sum.Failed())

	if _, err := sys.PublishReports("sp-system validation status"); err != nil {
		return err
	}
	if err := saveSnapshot(sys, *save); err != nil {
		return err
	}
	// A cell that could not execute at all is a command failure, matching
	// the serial loop's behaviour (a failing-but-recorded run is not).
	if cellErrs > 0 {
		return fmt.Errorf("%d campaign cells failed to execute", cellErrs)
	}
	return nil
}

func runValidate(args []string) (err error) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	exp := fs.String("experiment", "H1", "experiment name (H1, ZEUS, HERMES)")
	cfgStr := fs.String("config", "SL5/64bit gcc4.1", "platform configuration")
	rootV := fs.String("root", "5.34", "ROOT version")
	quick := fs.Bool("quick", false, "scale workloads down")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := storage.OpenOrMemory(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(*quick, store)
	if err != nil {
		return err
	}
	cfg, err := platform.ParseConfig(*cfgStr)
	if err != nil {
		return err
	}
	exts, err := externalSet(sys, *rootV)
	if err != nil {
		return err
	}
	rec, err := sys.Validate(*exp, cfg, exts, fmt.Sprintf("cli validate %v", cfg))
	if err != nil {
		return err
	}
	fmt.Print(report.TextRun(rec))
	if !rec.Passed() {
		if diff, attr, err := sys.Diagnose(rec); err == nil {
			fmt.Println()
			fmt.Print(report.TextDiff(diff))
			fmt.Printf("responsible party: %s\n", attr.Responsible())
		}
	}
	return nil
}

func runMigrate(args []string) (err error) {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	exp := fs.String("experiment", "H1", "experiment name")
	cfgStr := fs.String("config", "SL6/64bit gcc4.4", "target configuration")
	rootV := fs.String("root", "5.34", "ROOT version")
	quick := fs.Bool("quick", false, "scale workloads down")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := storage.OpenOrMemory(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(*quick, store)
	if err != nil {
		return err
	}
	cfg, err := platform.ParseConfig(*cfgStr)
	if err != nil {
		return err
	}
	exts, err := externalSet(sys, *rootV)
	if err != nil {
		return err
	}
	// Baseline first, so migration has a reference to validate against.
	if _, err := sys.Validate(*exp, platform.OriginalConfig(), exts, "baseline capture"); err != nil {
		return err
	}
	rep, err := sys.MigrateExperiment(*exp, cfg, exts, fmt.Sprintf("cli migrate %v", cfg))
	if err != nil {
		return err
	}
	fmt.Printf("migration of %s to %v: converged=%t\n", *exp, cfg, rep.Succeeded)
	for i, it := range rep.Iterations {
		fmt.Printf("  iteration %d: run=%s passed=%t regressions=%d interventions=%d (%v)\n",
			i+1, it.RunID, it.Passed, it.Regressions, len(it.Interventions), it.Attribution)
	}
	if rep.Succeeded {
		fmt.Println()
		fmt.Print(rep.Recipe())
	}
	return nil
}

func runMatrix(args []string) (err error) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	save := fs.String("save", "", "write a storage snapshot to this file afterwards")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, recorded, err := openInspect(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(true, store)
	if err != nil {
		return err
	}
	// A recorded store is inspected as-is through the read-only view
	// (it *cannot* be mutated from here); only the in-memory store gets
	// a quick demo campaign so there is something to show.
	if !recorded && sys.Book.TotalRuns() == 0 {
		fmt.Println("(running quick campaign to populate the matrix)")
		exts, err := externalSet(sys, "5.34")
		if err != nil {
			return err
		}
		for _, exp := range sys.Experiments() {
			if _, err := sys.Validate(exp, platform.ReferenceConfig(), exts, "matrix baseline"); err != nil {
				return err
			}
		}
	}
	cells, err := sys.Matrix()
	if err != nil {
		return err
	}
	fmt.Print(report.TextMatrix(cells))
	return saveSnapshot(sys, *save)
}

func runHistory(args []string) (err error) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	exp := fs.String("experiment", "H1", "experiment name")
	test := fs.String("test", "", "test name (defaults to the first chain's validate stage)")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, recorded, err := openInspect(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(true, store)
	if err != nil {
		return err
	}
	// With a recorded store, query the existing history through the
	// read-only view; otherwise build one by running a quick two-config
	// campaign in memory.
	if !recorded && sys.Book.TotalRuns() == 0 {
		exts, err := externalSet(sys, "5.34")
		if err != nil {
			return err
		}
		if _, err := sys.Validate(*exp, platform.OriginalConfig(), exts, "baseline"); err != nil {
			return err
		}
		sl6, err := platform.ParseConfig("SL6/64bit gcc4.4")
		if err != nil {
			return err
		}
		if _, err := sys.Validate(*exp, sl6, exts, "raw SL6 attempt"); err != nil {
			return err
		}
		if _, err := sys.MigrateExperiment(*exp, sl6, exts, "SL6 campaign"); err != nil {
			return err
		}
	}

	name := *test
	if name == "" {
		name = "chain01/validate"
	}
	// History through the bookkeeping index: one segment decode plus the
	// record tail, instead of re-decoding every run record per query
	// (identical answers to Book, property-tested in bookkeep).
	x, err := bookkeep.BuildIndex(sys.Store)
	if err != nil {
		return err
	}
	entries, err := x.History(*exp, name)
	if err != nil {
		return err
	}
	fmt.Print(bookkeep.RenderHistory(name, entries))
	if first, ok := bookkeep.FirstFailure(entries); ok {
		fmt.Printf("\nfirst failure: %s on %s\n", first.RunID, first.Config)
	}
	flaky, err := x.FlakyTests(*exp)
	if err != nil {
		return err
	}
	fmt.Printf("flaky tests (outcome changed with no input change): %d\n", len(flaky))
	return nil
}

func runRuns(args []string) (err error) {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	limit := fs.Int("limit", 500, "maximum runs to list per invocation (0: no limit)")
	after := fs.String("after", "", "list runs strictly after this run ID (cursor from the previous page)")
	experiment := fs.String("experiment", "", "restrict the listing to one experiment")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, recorded, err := openInspect(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	sys, err := newSystem(true, store)
	if err != nil {
		return err
	}
	// List what is recorded (via the read-only view — a live campaign
	// writer does not block us); only the in-memory store gets demo
	// runs so there is something to show.
	if !recorded && sys.Book.TotalRuns() == 0 {
		exts, err := externalSet(sys, "5.34")
		if err != nil {
			return err
		}
		for _, exp := range sys.Experiments() {
			if _, err := sys.Validate(exp, platform.ReferenceConfig(), exts, "demo run"); err != nil {
				return err
			}
		}
	}
	// Paged through the index (segment-accelerated when the store holds
	// one): the listing never materializes the full run history.
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return err
	}
	var metas []*bookkeep.RunMeta
	var next string
	total := x.TotalRuns()
	if *experiment != "" {
		metas, next = x.RunsForPage(*experiment, "", *after, *limit)
		total = x.TotalRunsFor(*experiment)
	} else {
		metas, next = x.RunsPage(*after, *limit)
	}
	for _, m := range metas {
		fmt.Printf("%s  %-7s %-20s pass=%d fail=%d  %q\n",
			m.RunID, m.Experiment, m.Config, m.Pass, m.Fail, m.Description)
	}
	if next != "" {
		fmt.Printf("(%d of %d runs; continue with -after %s)\n", len(metas), total, next)
	}
	return nil
}

// runStore dispatches the storage admin subcommands.
func runStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: spsys store <stats|compact|synth|sync|corrupt> [flags]")
	}
	switch sub, rest := args[0], args[1:]; sub {
	case "stats":
		return runStoreStats(rest)
	case "compact":
		return runStoreCompact(rest)
	case "synth":
		return runStoreSynth(rest)
	case "sync":
		return runStoreSync(rest)
	case "corrupt":
		return runStoreCorrupt(rest)
	case "leases":
		return runStoreLeases(rest)
	default:
		return fmt.Errorf("unknown store subcommand %q (want stats, compact, synth, sync, corrupt or leases)", sub)
	}
}

// runStoreLeases prints the distributed campaign's cell lease ledger:
// the summary counters /healthz exposes, then one line per record —
// who holds (or held) each cell, its fencing epoch, and the verdict.
// Works through the read-only view, so it inspects a live campaign.
func runStoreLeases(args []string) (err error) {
	fs := flag.NewFlagSet("store leases", flag.ExitOnError)
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store leases: -store is required")
	}
	store, err := storage.OpenView(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	recs := campaign.LoadLeases(store)
	if len(recs) == 0 {
		fmt.Println("no cell leases recorded")
		return nil
	}
	now := cron.Wall()()
	sum := campaign.SummarizeLeases(recs, now)
	fmt.Printf("leases: %d total: held=%d expired=%d done=%d released=%d steals=%d\n",
		sum.Total(), sum.Held, sum.Expired, sum.Done, sum.Released, sum.Steals)
	for _, w := range sortedKeys(sum.Workers) {
		fmt.Printf("  worker %-20s %d cells completed\n", w, sum.Workers[w])
	}
	for _, r := range recs {
		state := r.State
		if r.State == campaign.LeaseHeld && r.Expired(now) {
			state = "expired"
		}
		line := fmt.Sprintf("%-9s epoch=%d worker=%-16s %s", state, r.Epoch, r.Worker, r.Cell)
		if r.State == campaign.LeaseDone {
			line += fmt.Sprintf("  run=%s passed=%v", r.RunID, r.Passed)
		}
		if r.Steals > 0 {
			line += fmt.Sprintf("  steals=%d", r.Steals)
		}
		fmt.Println(line)
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runStoreCorrupt flips one byte of one blob's on-disk file —
// controlled bit rot, for exercising the framework's corruption
// detection end to end (the scrub suite; CI's scrub-smoke job damages
// a synthesized store this way and asserts `spd -scrub` catches it).
// With no -blob it damages the lexicographically first blob, so a
// scripted corrupt-then-scrub pair is deterministic.
func runStoreCorrupt(args []string) (err error) {
	fs := flag.NewFlagSet("store corrupt", flag.ExitOnError)
	blob := fs.String("blob", "", "hash of the blob to damage (default: lexicographically first)")
	name := fs.String("name", "", "binding (namespace/key) whose blob to damage instead of -blob")
	ns := fs.String("ns", "", "damage the blob behind the first binding in this namespace instead of -blob")
	offset := fs.Int64("offset", 0, "byte offset of the flipped byte")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store corrupt: -store is required")
	}
	if storage.IsRemoteStore(*storeDir) {
		return fmt.Errorf("store corrupt: damages on-disk blob files; -store must be a local directory")
	}
	b, err := storage.OpenFSBackend(*storeDir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := b.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	hash, label := *blob, *blob
	switch {
	case *name != "":
		h, ok := b.ResolveName(*name)
		if !ok {
			return fmt.Errorf("store corrupt: no binding %q in %s", *name, *storeDir)
		}
		hash, label = h, fmt.Sprintf("%s (%s)", h, *name)
	case *ns != "":
		names, lerr := b.ListNames()
		if lerr != nil {
			return lerr
		}
		sort.Strings(names)
		for _, nk := range names {
			if strings.HasPrefix(nk, *ns+"/") {
				h, _ := b.ResolveName(nk)
				hash, label = h, fmt.Sprintf("%s (%s)", h, nk)
				break
			}
		}
		if hash == "" {
			return fmt.Errorf("store corrupt: namespace %q has no bindings in %s", *ns, *storeDir)
		}
	case hash == "":
		hashes, lerr := b.ListBlobs()
		if lerr != nil {
			return lerr
		}
		if len(hashes) == 0 {
			return fmt.Errorf("store corrupt: %s holds no blobs", *storeDir)
		}
		hash, label = hashes[0], hashes[0]
	}
	if err := b.DamageBlob(hash, *offset); err != nil {
		return err
	}
	fmt.Printf("damaged blob %s at offset %d in %s (one byte flipped)\n", label, *offset, *storeDir)
	return nil
}

// runStoreSync replicates SRC into DST. SRC may be a store directory
// (read through the shared-lock view, so it works beside a live
// writer) or an spserve URL (read through the /api/v1/ store API);
// DST is a local directory this command takes the writer lock on. The
// transfer moves only what DST lacks, so it is idempotent — re-running
// it over an identical pair reports 0 blobs, 0 bindings — and a
// transfer interrupted by a crash is resumed by simply running it
// again.
func runStoreSync(args []string) (err error) {
	fs := flag.NewFlagSet("store sync", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: spsys store sync SRC DST (SRC: store directory or spserve URL; DST: directory)")
	}
	srcName, dstName := fs.Arg(0), fs.Arg(1)
	if storage.IsRemoteStore(dstName) {
		return fmt.Errorf("store sync: DST must be a local directory — a served store is read-only (run the sync on the replica's host, or use `spserve -follow`)")
	}
	src, err := storage.OpenView(srcName)
	if err != nil {
		return err
	}
	defer closeStore(src, &err)
	dst, err := storage.Open(dstName)
	if err != nil {
		return err
	}
	defer closeStore(dst, &err)
	st, err := storage.Sync(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("synced %s -> %s: %d blobs (%d bytes), %d bindings (source: %d names, %d blobs)\n",
		srcName, dstName, st.BlobsCopied, st.BlobBytes, st.BindingsBound, st.NamesSeen, st.BlobsSeen)
	if st.SourcePosOK {
		fmt.Printf("  covers source position generation %d offset %d\n", st.SourcePos.Generation, st.SourcePos.Offset)
	}
	return nil
}

// runStoreStats prints the extended store figures through the
// read-only view (or the remote view for a URL), so it works beside a
// live writer.
func runStoreStats(args []string) (err error) {
	fs := flag.NewFlagSet("store stats", flag.ExitOnError)
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store stats: -store is required")
	}
	store, err := storage.OpenView(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	info, err := store.Info()
	if err != nil {
		return err
	}
	fmt.Printf("store %s\n", *storeDir)
	fmt.Printf("  bindings        %d\n", info.Bindings)
	fmt.Printf("  blobs           %d (%d bytes)\n", info.Blobs, info.Bytes)
	fmt.Printf("  snapshot        generation %d (%d bytes)\n", info.Generation, info.SnapshotBytes)
	fmt.Printf("  journal tail    %d bytes\n", info.JournalBytes)
	return nil
}

// runStoreCompact takes the writer lock and folds the journal into a
// fresh snapshot.
func runStoreCompact(args []string) (err error) {
	fs := flag.NewFlagSet("store compact", flag.ExitOnError)
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store compact: -store is required")
	}
	store, err := storage.Open(*storeDir)
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	cs, err := store.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s: generation %d, %d bindings, %d journal bytes folded into a %d-byte snapshot\n",
		*storeDir, cs.Generation, cs.Bindings, cs.JournalBytes, cs.SnapshotBytes)
	return nil
}

// runStoreSynth appends synthetic run records — the fixture builder for
// scaling smoke tests and benchmarks. It opens the store without
// fsyncs (the data is synthetic; speed is the point) but closes it
// cleanly, so the result is a valid store.
func runStoreSynth(args []string) (err error) {
	fs := flag.NewFlagSet("store synth", flag.ExitOnError)
	n := fs.Int("runs", 1000, "number of synthetic run records to append")
	experiment := fs.String("experiment", "SYNTH", "experiment label on the synthetic runs")
	failEvery := fs.Int("fail-every", 10, "every k-th run carries a failing job (0: all green)")
	storeDir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store synth: -store is required")
	}
	store, err := storage.OpenWith(*storeDir, storage.Options{Sync: storage.SyncNone})
	if err != nil {
		return err
	}
	defer closeStore(store, &err)
	first, last, err := runner.SynthesizeRuns(store, *n, runner.SynthOptions{
		Experiment: *experiment,
		FailEvery:  *failEvery,
	})
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %d runs (%s .. %s) into %s\n", *n, first, last, *storeDir)
	return nil
}
