package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bookkeep"
	"repro/internal/report"
	"repro/internal/storage"
)

// The smoke tests drive each spsys subcommand through its real
// entrypoint (the same function main dispatches to), at -quick scale.

func TestCampaignCommand(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "campaign.json")
	if err := runCampaign([]string{"-quick", "-workers", "2", "-save", snap}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("snapshot is empty")
	}
}

// TestCampaignCommandDiskStore records a campaign onto the durable
// on-disk store and verifies a *fresh* process-equivalent (a new store
// handle over the same directory) reads back the same status matrix the
// snapshot captured — the acceptance path for `spsys campaign -store`
// feeding a later `spreport -store`.
func TestCampaignCommandDiskStore(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "spstore")
	snap := filepath.Join(dir, "campaign.json")
	if err := runCampaign([]string{"-quick", "-workers", "2", "-store", storeDir, "-save", snap}); err != nil {
		t.Fatal(err)
	}

	store, err := storage.Open(storeDir)
	if err != nil {
		t.Fatalf("reopening campaign store: %v", err)
	}
	defer store.Close()
	cells, err := bookkeep.New(store).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no matrix cells persisted")
	}
	fromStore := report.TextMatrix(cells)

	// The -save snapshot captured the matrix at process exit; the disk
	// store must render the identical one.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := storage.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	snapCells, err := bookkeep.New(restored).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if fromSnap := report.TextMatrix(snapCells); fromSnap != fromStore {
		t.Fatalf("disk store matrix differs from snapshot matrix:\n got:\n%s\nwant:\n%s", fromStore, fromSnap)
	}

	// The published status site is on the common storage too.
	if pages := store.List(report.WebNS); len(pages) == 0 {
		t.Fatal("no status pages persisted to the disk store")
	}
}

// TestInspectionCommandsDoNotMutateRecordedStore: runs/matrix/history
// against a store that already holds a campaign must read it back, not
// append demo runs to the durable bookkeeping.
func TestInspectionCommandsDoNotMutateRecordedStore(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "spstore")
	if err := runCampaign([]string{"-quick", "-workers", "2", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	countRuns := func() int {
		store, err := storage.Open(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		return len(store.List("runs"))
	}
	before := countRuns()
	if before == 0 {
		t.Fatal("campaign recorded no runs")
	}
	if err := runRuns([]string{"-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	if err := runMatrix([]string{"-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	if err := runHistory([]string{"-experiment", "H1", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	if after := countRuns(); after != before {
		t.Fatalf("inspection commands grew the recorded store: %d runs -> %d", before, after)
	}
}

// TestInspectionCommandsWorkWhileWriterIsLive: runs/matrix/history used
// to take the exclusive writer flock and failed while a campaign was
// running; through the read-only view they attach alongside the live
// writer.
func TestInspectionCommandsWorkWhileWriterIsLive(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "spstore")
	if err := runCampaign([]string{"-quick", "-workers", "2", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	writer, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close() // stands in for a campaign mid-flight
	if err := runRuns([]string{"-store", storeDir}); err != nil {
		t.Fatalf("runs against a live-locked store: %v", err)
	}
	if err := runMatrix([]string{"-store", storeDir}); err != nil {
		t.Fatalf("matrix against a live-locked store: %v", err)
	}
	if err := runHistory([]string{"-experiment", "H1", "-store", storeDir}); err != nil {
		t.Fatalf("history against a live-locked store: %v", err)
	}
}

// TestInspectionCommandsOnEmptyRecordedStore: a recorded-but-empty
// store is reported as such, never populated with demo runs (the view
// could not record them anyway).
func TestInspectionCommandsOnEmptyRecordedStore(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "spstore")
	store, err := storage.Open(storeDir) // create an empty store
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := runRuns([]string{"-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	if err := runMatrix([]string{"-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	reopened, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if runs := reopened.List("runs"); len(runs) != 0 {
		t.Fatalf("inspection populated a recorded store: %v", runs)
	}
}

func TestCampaignCommandSerialWorker(t *testing.T) {
	if err := runCampaign([]string{"-quick", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCommand(t *testing.T) {
	err := runValidate([]string{"-quick", "-experiment", "H1", "-config", "SL5/64bit gcc4.1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateCommandRejectsBadConfig(t *testing.T) {
	if err := runValidate([]string{"-quick", "-config", "not-a-config"}); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestMigrateCommand(t *testing.T) {
	err := runMigrate([]string{"-quick", "-experiment", "H1", "-config", "SL6/64bit gcc4.4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatrixCommand(t *testing.T) {
	if err := runMatrix(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsCommand(t *testing.T) {
	if err := runRuns(nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryCommand(t *testing.T) {
	if err := runHistory([]string{"-experiment", "H1"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// storeRunCount opens the store directory fresh and counts recorded
// validation runs.
func storeRunCount(t *testing.T, dir string) int {
	t.Helper()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	return x.TotalRuns()
}

// TestCampaignIncrementalRerun is the CLI acceptance path: re-running
// `spsys campaign -store DIR` over an unchanged store executes zero
// builds and zero validation runs — the plan is all-skip — and a
// -dry-run says so without touching the store.
func TestCampaignIncrementalRerun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spstore")
	first := captureStdout(t, func() error {
		return runCampaign([]string{"-quick", "-workers", "2", "-store", dir})
	})
	if !strings.Contains(first, "to run") {
		t.Fatalf("campaign output missing plan summary:\n%s", first)
	}
	runs := storeRunCount(t, dir)
	if runs == 0 {
		t.Fatal("first campaign recorded no runs")
	}

	// Dry run: prints the all-skip plan, records nothing.
	dry := captureStdout(t, func() error {
		return runCampaign([]string{"-quick", "-dry-run", "-store", dir})
	})
	if !strings.Contains(dry, "0 to run") || !strings.Contains(dry, "up-to-date") {
		t.Fatalf("dry run over unchanged store is not all-skip:\n%s", dry)
	}
	if got := storeRunCount(t, dir); got != runs {
		t.Fatalf("dry run changed the store: %d -> %d runs", runs, got)
	}

	// Real re-campaign: all-skip, zero new runs, matrix marked.
	second := captureStdout(t, func() error {
		return runCampaign([]string{"-quick", "-workers", "2", "-store", dir})
	})
	if got := storeRunCount(t, dir); got != runs {
		t.Fatalf("re-campaign over unchanged store executed runs: %d -> %d", runs, got)
	}
	if !strings.Contains(second, "skipped: up-to-date") || !strings.Contains(second, "0 from this campaign") {
		t.Fatalf("re-campaign output does not surface the skips:\n%s", second)
	}
}

// TestStoreAdminCommands drives the storage admin family end to end:
// synth populates a store, stats reads it (read-only, beside nothing),
// compact folds the journal, and the compacted store still serves the
// paged runs listing and records real campaigns afterwards.
func TestStoreAdminCommands(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "adminstore")
	if err := runStore([]string{"synth", "-runs", "120", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	if err := runStore([]string{"stats", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}

	st, err := storage.OpenReadOnly(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := st.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 || info.JournalBytes == 0 {
		t.Fatalf("pre-compact info = %+v", info)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runStore([]string{"compact", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.OpenReadOnly(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := st2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Generation != 1 || info2.JournalBytes != 0 {
		t.Fatalf("post-compact info = %+v", info2)
	}
	x, err := bookkeep.BuildIndex(st2)
	if err != nil {
		t.Fatal(err)
	}
	if x.TotalRuns() != 120 {
		t.Fatalf("synthesized runs after compact = %d, want 120", x.TotalRuns())
	}
	page, next := x.RunsPage("", 50)
	if len(page) != 50 || next == "" {
		t.Fatalf("paged listing over synthesized store: %d runs, next %q", len(page), next)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// The paged CLI listing works over the compacted store.
	if err := runRuns([]string{"-store", storeDir, "-limit", "10"}); err != nil {
		t.Fatal(err)
	}
	// A real recording process opens the compacted store and mints IDs
	// past the synthesized ones.
	if err := runValidate([]string{"-quick", "-experiment", "H1", "-config", "SL5/64bit gcc4.1", "-store", storeDir}); err != nil {
		t.Fatal(err)
	}
	st3, err := storage.OpenReadOnly(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	x3, err := bookkeep.BuildIndex(st3)
	if err != nil {
		t.Fatal(err)
	}
	if x3.TotalRuns() != 121 {
		t.Fatalf("runs after validate on compacted store = %d, want 121", x3.TotalRuns())
	}
	if _, err := x3.Run("run-0121"); err != nil {
		t.Fatalf("real run after 120 synthetic ones did not mint run-0121: %v", err)
	}
}

// TestStoreCommandUsage rejects unknown/missing subcommands and missing
// -store flags with errors instead of panics.
func TestStoreCommandUsage(t *testing.T) {
	if err := runStore(nil); err == nil {
		t.Fatal("store with no subcommand succeeded")
	}
	if err := runStore([]string{"bogus"}); err == nil {
		t.Fatal("store bogus succeeded")
	}
	if err := runStore([]string{"stats"}); err == nil {
		t.Fatal("store stats without -store succeeded")
	}
	if err := runStore([]string{"compact"}); err == nil {
		t.Fatal("store compact without -store succeeded")
	}
	if err := runStore([]string{"synth"}); err == nil {
		t.Fatal("store synth without -store succeeded")
	}
}
