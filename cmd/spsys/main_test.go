package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The smoke tests drive each spsys subcommand through its real
// entrypoint (the same function main dispatches to), at -quick scale.

func TestCampaignCommand(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "campaign.json")
	if err := runCampaign([]string{"-quick", "-workers", "2", "-save", snap}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("snapshot is empty")
	}
}

func TestCampaignCommandSerialWorker(t *testing.T) {
	if err := runCampaign([]string{"-quick", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCommand(t *testing.T) {
	err := runValidate([]string{"-quick", "-experiment", "H1", "-config", "SL5/64bit gcc4.1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidateCommandRejectsBadConfig(t *testing.T) {
	if err := runValidate([]string{"-quick", "-config", "not-a-config"}); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestMigrateCommand(t *testing.T) {
	err := runMigrate([]string{"-quick", "-experiment", "H1", "-config", "SL6/64bit gcc4.4"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatrixCommand(t *testing.T) {
	if err := runMatrix(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsCommand(t *testing.T) {
	if err := runRuns(nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryCommand(t *testing.T) {
	if err := runHistory([]string{"-experiment", "H1"}); err != nil {
		t.Fatal(err)
	}
}
