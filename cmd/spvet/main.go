// Command spvet runs the repro invariant-lint suite (internal/analysis):
// idorder, wallclock, lockguard, storewrite and syncclose.
//
// Two modes share one type-checking path:
//
//	spvet ./...                                 # standalone, any package pattern
//	go vet -vettool=$(which spvet) ./...        # as a go vet tool
//
// In vettool mode the go command drives spvet through its unitchecker
// protocol: `spvet -V=full` must print a stable version line, `spvet
// -flags` the tool's extra flags (none), and each analysis unit arrives
// as a JSON config file argument naming the sources, the import map and
// the compiled export data of every dependency. Diagnostics go to
// stderr; a nonzero exit marks the unit failed.
//
// Suppressions: a line (or the line above it) carrying
// //spvet:allow <name>[,<name>...] — reason
// silences the named analyzers there. Test files are never checked.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/spvet"
)

// version is the string reported to `go vet`'s tool-ID handshake; the
// go command rejects "devel" and fewer than three fields.
const version = "spvet version v1.0.0"

func main() {
	args := os.Args[1:]
	// The go command probes the tool before using it: -V=full for a
	// cache key, -flags for the flag surface. Both must answer on
	// stdout and exit 0.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "-V":
			fmt.Println(version)
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads the patterns via `go list -export` and analyzes
// every non-dependency package.
func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		return 2
	}
	pkgs, err := load.Targets(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := load.Run(pkg, spvet.Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spvet: %s: %v\n", pkg.Path, err)
			return 2
		}
		if printDiags(pkg.Fset, diags) {
			exit = 1
		}
	}
	return exit
}

// vetConfig mirrors the fields of the JSON unit description the go
// command writes for a vet tool (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one go-vet unit described by cfgPath.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The vetx file is the unit's fact artifact. This suite exports no
	// facts, but the go command caches and re-feeds the file, so it
	// must exist — for dependency-only units it is the whole job.
	if cfg.VetxOutput != "" {
		//spvet:allow storewrite — the vetx artifact goes where the go command says, inside its build cache
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "spvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(cfg.ImportPath, fset, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile, goVersion(cfg.GoVersion))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "spvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := load.Run(pkg, spvet.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "spvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if printDiags(fset, diags) {
		return 1
	}
	return 0
}

// goVersion normalizes a module go directive ("1.22", "1.22.3") to the
// "go1.22" form go/types expects; empty stays empty (no limit).
func goVersion(v string) string {
	if v == "" || strings.HasPrefix(v, "go") {
		return v
	}
	return "go" + v
}

// printDiags writes the diagnostics in file:line:col form and reports
// whether there were any.
func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	return len(diags) > 0
}
