package main

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/campaign"
	"repro/internal/storage"
)

// quickOpts returns daemon options for one fast cycle against the store.
func quickOpts(storeDir string, cycles int) options {
	return options{
		storeDir: storeDir,
		every:    20 * time.Millisecond,
		workers:  4,
		quick:    true,
		cycles:   cycles,
		title:    "spd test",
	}
}

// countRuns reopens the store fresh (asserting, as a side effect, that
// the daemon released the writer lock) and counts recorded runs.
func countRuns(t *testing.T, dir string) int {
	t.Helper()
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatalf("reopening store after daemon exit: %v", err)
	}
	defer store.Close()
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	return x.TotalRuns()
}

// TestDaemonFirstCycleRecordsSecondCycleSkips is the daemon's core
// contract: cycle one executes the full matrix onto an empty store, and
// a fresh daemon process over the same store plans zero cells.
func TestDaemonFirstCycleRecordsSecondCycleSkips(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spdstore")

	if err := run(context.Background(), quickOpts(dir, 1)); err != nil {
		t.Fatalf("first daemon run: %v", err)
	}
	first := countRuns(t, dir)
	if first == 0 {
		t.Fatal("first cycle recorded no runs")
	}

	// Fresh daemon process-equivalent over the now-populated store.
	if err := run(context.Background(), quickOpts(dir, 1)); err != nil {
		t.Fatalf("second daemon run: %v", err)
	}
	if second := countRuns(t, dir); second != first {
		t.Fatalf("steady-state cycle executed runs: %d -> %d", first, second)
	}

	// In-process steady state too: two more cycles in one daemon must
	// execute nothing — each cycle rebuilds the inputs from the
	// definitions, so its verdicts match a fresh process exactly.
	if err := run(context.Background(), quickOpts(dir, 2)); err != nil {
		t.Fatalf("two-cycle daemon run: %v", err)
	}
	if after := countRuns(t, dir); after != first {
		t.Fatalf("in-process cycles executed runs over an unchanged store: %d -> %d", first, after)
	}

	// The recorded plan must say so: everything skipped, nothing run.
	store, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	plan, err := campaign.LoadLatestPlan(store)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan recorded")
	}
	if plan.Runs != 0 || plan.Skips != len(plan.Cells) || len(plan.Cells) == 0 {
		t.Fatalf("steady-state plan: runs=%d skips=%d cells=%d, want all-skip", plan.Runs, plan.Skips, len(plan.Cells))
	}
	for _, c := range plan.Cells {
		if c.Decision != "skip" || c.PriorRunID == "" {
			t.Fatalf("cell %s on %s: decision=%q prior=%q, want skip with prior run", c.Experiment, c.Config, c.Decision, c.PriorRunID)
		}
	}
}

// TestDaemonCleanShutdownMidCycle cancels the daemon while the first
// cycle is executing: run must return nil (clean shutdown), the store
// must be synced and the writer lock released.
func TestDaemonCleanShutdownMidCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spdstore")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	if err := run(ctx, quickOpts(dir, 0)); err != nil {
		t.Fatalf("cancelled daemon returned %v, want nil", err)
	}
	// Whatever was recorded must be readable; the lock must be free.
	countRuns(t, dir)
}

func TestDaemonRequiresStore(t *testing.T) {
	if err := run(context.Background(), options{}); err == nil {
		t.Fatal("daemon started without -store")
	}
}

// TestWorkerDrainsOverHTTP is the distributed topology end to end at
// the command level: a primary's store served through startAPIServer,
// and `spd -worker` cycles against its URL with no local store. The
// first worker cycle executes the full matrix through the write API;
// a second worker over the drained store plans zero cells; all leases
// end done.
func TestWorkerDrainsOverHTTP(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spdstore")
	primary, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, addr, err := startAPIServer(primary, "127.0.0.1:0", "sekrit")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	workerOpts := func(id string) options {
		o := quickOpts("http://"+addr, 1)
		o.worker = true
		o.token = "sekrit"
		o.workerID = id
		return o
	}
	if err := run(context.Background(), workerOpts("w1")); err != nil {
		t.Fatalf("worker cycle: %v", err)
	}
	x, err := bookkeep.BuildIndex(primary)
	if err != nil {
		t.Fatal(err)
	}
	first := x.TotalRuns()
	if first == 0 {
		t.Fatal("worker cycle recorded no runs on the primary")
	}

	// Steady state through a different worker identity: nothing stale.
	if err := run(context.Background(), workerOpts("w2")); err != nil {
		t.Fatalf("second worker cycle: %v", err)
	}
	x2, err := bookkeep.BuildIndex(primary)
	if err != nil {
		t.Fatal(err)
	}
	if x2.TotalRuns() != first {
		t.Fatalf("steady-state worker cycle executed runs: %d -> %d", first, x2.TotalRuns())
	}

	recs := campaign.LoadLeases(primary)
	if len(recs) == 0 {
		t.Fatal("no lease records after a distributed drain")
	}
	sum := campaign.SummarizeLeases(recs, time.Now())
	if sum.Held != 0 || sum.Expired != 0 || sum.Done != len(recs) {
		t.Fatalf("lease summary %+v, want all %d done", sum, len(recs))
	}
	for w := range sum.Workers {
		if w != "w1" {
			t.Fatalf("cells executed by %q, want only w1", w)
		}
	}
}

// A worker (or listening primary) without a token must refuse to start:
// there is no unauthenticated write mode to fall back to.
func TestDistributedRequiresToken(t *testing.T) {
	o := quickOpts("http://127.0.0.1:1", 1)
	o.worker = true
	if err := run(context.Background(), o); err == nil {
		t.Fatal("worker started without a token")
	}
	o = quickOpts(filepath.Join(t.TempDir(), "s"), 1)
	o.listen = "127.0.0.1:0"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("listening primary started without a token")
	}
}

func TestDaemonRejectsBadCron(t *testing.T) {
	opts := quickOpts(filepath.Join(t.TempDir(), "s"), 1)
	opts.every = 0
	opts.cronSpec = "not a cron"
	if err := run(context.Background(), opts); err == nil {
		t.Fatal("daemon accepted malformed cron spec")
	}
}
