// Command spd is the sp-system's wall-clock validation daemon: the
// producer-side twin of spserve. Where spserve reads a store and serves
// status, spd owns a store's writer lock and keeps it current — on a
// real cron cadence it re-plans the full experiments × configurations ×
// externals matrix against the recorded state and executes only the
// stale cells, which is the paper's continuously running sp-system ("a
// regular build of the experimental software is done automatically")
// rather than a one-shot campaign.
//
// Usage:
//
//	spd -store DIR [-cron "7 2 * * *"] [-every 0] [-workers N]
//	    [-quick] [-cycles 0] [-title "..."]
//	spd -store DIR -scrub [-scrub-page 1000] [...]
//	spd -store DIR -listen ADDR -token SECRET [...]
//	spd -store http://primary:8080 -worker -token SECRET [-id NAME] [...]
//
// An immediate plan/execute cycle runs at startup (catching up on
// whatever changed while the daemon was down); afterwards one cycle
// runs per cron firing. -every replaces the cron schedule with a fixed
// interval for sub-minute cadences (smoke tests, demos). -cycles bounds
// the number of cycles (0 = run until a signal).
//
// With -scrub the daemon becomes the archive's bit-rot scrubber: each
// cycle re-reads and re-hashes every blob in the store in pages of
// -scrub-page (one standalone test job per page, see internal/scrub)
// and records the verdicts as an ordinary run under the SCRUB
// experiment — indexed, published and served like any validation, so a
// flipped byte anywhere in the archive surfaces as a red matrix cell
// naming the damaged blob. Scrub cycles go through the same publish and
// opportunistic-compaction tail as validation cycles.
//
// A campaign can be spread over any number of machines. The primary
// owns the store directory as usual but adds -listen, which serves the
// store's HTTP API with writes enabled behind the shared -token — the
// flock-holding process stays the archive's single appender. Each
// additional machine runs `spd -worker -store http://primary:ADDR`
// with the same token and no local store at all: it computes the same
// deterministic plan from the primary's state and drains it through
// the lease queue (internal/campaign.DrainPlan), claiming stale cells
// one at a time so every cell executes on exactly one machine. With
// -listen set the primary drains through the same queue, making it one
// more worker. A worker that crashes mid-cell simply stops renewing
// its lease; after the lease TTL (-lease-ttl) any peer steals the cell
// and re-executes it. On SIGTERM a worker finishes executing cells,
// completes their leases, and releases any claims it had not started.
// Workers skip the publish/compaction tail — site publishing and store
// maintenance stay the primary's job.
//
// Every cycle rebuilds the experiment inputs fresh from their
// definitions — the paper's "regular build of the experimental
// software ... according to the current prescription" — rather than
// carrying forward the previous cycle's migration-mutated repositories.
// Plan verdicts therefore depend only on the definitions and the
// recorded store, never on how long the daemon has been running: a
// cycle and a daemon restart compute identical plans.
//
// Because every cycle goes through the campaign planner, a steady-state
// cycle over an unchanged store plans zero cells: the daemon costs one
// bookkeeping index build per firing, not a re-campaign. Each cycle
// records its plan under the "plan" namespace and republishes the
// status site, so a concurrent `spserve -store DIR` (which attaches
// through the shared-lock read view) shows runs, matrix and plan live.
// After publishing, the cycle refreshes the store's persisted index
// segment (via PublishReports) and — once the name journal outgrows a
// threshold — compacts the store (`spsys store compact`'s operation,
// run opportunistically), so open and index costs stay O(recent
// change) no matter how long the daemon has been feeding the archive.
//
// On SIGTERM or SIGINT the daemon shuts down cleanly: cells already
// executing finish and are recorded, no new cell starts, the store's
// journal is synced by Close and the exclusive writer lock is released.
// Exit code 0 means the store is consistent and immediately reusable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cron"
	"repro/internal/experiments"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/valtest"
)

func main() {
	var opts options
	flag.StringVar(&opts.storeDir, "store", "", "directory of the durable on-disk common storage (required)")
	flag.StringVar(&opts.cronSpec, "cron", "7 2 * * *", "five-field cron cadence for re-validation cycles")
	flag.DurationVar(&opts.every, "every", 0, "fixed interval between cycles, overriding -cron (0: use -cron)")
	flag.IntVar(&opts.workers, "workers", runtime.NumCPU(), "concurrent campaign workers")
	flag.BoolVar(&opts.quick, "quick", false, "scale workloads down for a fast demonstration")
	flag.IntVar(&opts.cycles, "cycles", 0, "stop after this many cycles (0: run until SIGTERM/SIGINT)")
	flag.StringVar(&opts.title, "title", "sp-system validation status", "published status page title")
	flag.BoolVar(&opts.scrub, "scrub", false, "run archive integrity scrub cycles instead of validation campaigns")
	flag.IntVar(&opts.scrubPage, "scrub-page", 0, "blobs per scrub test job (0: the scrub default)")
	flag.BoolVar(&opts.worker, "worker", false, "run as a remote campaign worker: -store is the primary's base URL")
	flag.StringVar(&opts.listen, "listen", "", "serve the store's HTTP API (writes enabled behind -token) on this address and drain cycles through the lease queue")
	flag.StringVar(&opts.token, "token", os.Getenv("SPD_TOKEN"), "shared bearer token for the write API (default $SPD_TOKEN)")
	flag.StringVar(&opts.workerID, "id", "", "this process's identity in lease records (default host.pid)")
	flag.DurationVar(&opts.leaseTTL, "lease-ttl", 0, "cell lease time-to-live; a holder silent past it is presumed dead (0: the campaign default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "spd:", err)
		os.Exit(1)
	}
}

type options struct {
	storeDir  string
	cronSpec  string
	every     time.Duration
	workers   int
	quick     bool
	cycles    int
	title     string
	scrub     bool
	scrubPage int
	worker    bool
	listen    string
	token     string
	workerID  string
	leaseTTL  time.Duration
}

// distributed reports whether cycles drain through the lease queue
// (shared with other workers) rather than assuming sole ownership of
// the plan.
func (o options) distributed() bool { return o.worker || o.listen != "" }

// id resolves this process's lease identity.
func (o options) id() string {
	if o.workerID != "" {
		return o.workerID
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "spd"
	}
	return fmt.Sprintf("%s.%d", host, os.Getpid())
}

// newSystem builds an SPSystem over the store with all three HERA
// experiments registered, optionally scaled down for quick cycles.
// core.NewHERA keeps spd and spsys registering digest-identical suites
// over shared stores.
func newSystem(quick bool, store *storage.Store) (*core.SPSystem, error) {
	return core.NewHERA(store, quick)
}

// newCadence builds the wall-clock driver from the flags.
func newCadence(opts options) (*cron.Driver, error) {
	if opts.every > 0 {
		next, err := cron.Every(opts.every)
		if err != nil {
			return nil, err
		}
		return cron.NewDriver(next), nil
	}
	sched, err := cron.Parse(opts.cronSpec)
	if err != nil {
		return nil, err
	}
	return sched.Driver(), nil
}

// run is the daemon body; tests drive it directly with a cancellable
// context in place of the signal handler.
func run(ctx context.Context, opts options) (err error) {
	if opts.storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	if opts.worker && opts.listen != "" {
		return fmt.Errorf("-worker and -listen are mutually exclusive: workers have no store to serve")
	}
	if opts.distributed() && opts.token == "" {
		return fmt.Errorf("-worker/-listen require -token (or $SPD_TOKEN): the write API has no unauthenticated mode")
	}
	if opts.scrub && opts.worker {
		return fmt.Errorf("-scrub runs on the primary: scrubbing re-reads every blob, which must not cross the network")
	}
	driver, err := newCadence(opts)
	if err != nil {
		return err
	}
	var store *storage.Store
	if opts.worker {
		// No local store at all: every read and write goes through the
		// primary's API, which keeps the flock holder the single appender.
		store, err = storage.OpenRemoteWith(opts.storeDir, storage.RemoteOptions{Token: opts.token})
	} else {
		store, err = storage.Open(opts.storeDir) // exclusive writer lock
	}
	if err != nil {
		return err
	}
	// Close performs the final journal sync and releases the writer
	// lock; a failure there means recorded bookkeeping may not be
	// durable and must not exit 0.
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if opts.listen != "" {
		srv, addr, serr := startAPIServer(store, opts.listen, opts.token)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Printf("spd: write API on http://%s/api/v1/ (worker id %s)\n", addr, opts.id())
	}

	fmt.Printf("spd: %s, cadence %s\n", opts.storeDir, cadenceLabel(opts))

	for cycle := 1; ; cycle++ {
		if err := runCycle(ctx, store, opts, cycle); err != nil {
			return err
		}
		if ctx.Err() != nil {
			break // interrupted mid-cycle: in-flight cells finished, stop here
		}
		if opts.cycles > 0 && cycle >= opts.cycles {
			fmt.Printf("spd: %d cycles completed, exiting\n", cycle)
			return nil
		}
		at, ok, err := waitNext(ctx, driver)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		fmt.Printf("spd: firing at %s\n", at.Format(time.RFC3339))
	}
	fmt.Println("spd: shutting down cleanly (in-flight cells finished, store synced)")
	return nil
}

func cadenceLabel(opts options) string {
	if opts.every > 0 {
		return fmt.Sprintf("every %v", opts.every)
	}
	return fmt.Sprintf("cron %q", opts.cronSpec)
}

// waitNext blocks until the next firing or cancellation.
func waitNext(ctx context.Context, driver *cron.Driver) (time.Time, bool, error) {
	return driver.Wait(ctx.Done())
}

// runCycle performs one plan/execute/publish pass over a system built
// fresh from the experiment definitions (see the package comment: plan
// verdicts must not depend on process lifetime). Cell-level failures
// are part of normal operation (a red cell is a meaningful result the
// next cycle retries); only systemic errors abort the daemon.
func runCycle(ctx context.Context, store *storage.Store, opts options, cycle int) error {
	if opts.scrub {
		return runScrubCycle(store, opts, cycle)
	}
	if opts.worker {
		// A worker's view of the primary advances only when it asks: pick
		// up whatever the primary and its peers recorded since last cycle
		// before planning against it.
		if err := store.Refresh(); err != nil {
			return err
		}
	}
	sys, err := newSystem(opts.quick, store)
	if err != nil {
		return err
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		return err
	}
	cells := campaign.MatrixPlan(sys.Experiments(), platform.OriginalConfig(),
		platform.PaperConfigs(), []*externals.Set{exts})
	engine := campaign.New(sys, opts.workers)
	plan, err := engine.Plan(cells)
	if err != nil {
		return err
	}
	if !opts.worker {
		// Workers don't re-record the plan: the content is identical, but
		// each record carries its own timestamp and the primary's latest
		// binding should not churn per worker.
		if err := plan.Store(sys.Store); err != nil {
			return err
		}
	}
	if plan.RunCount() > 0 {
		var sum *campaign.Summary
		var stats *campaign.QueueStats
		if opts.distributed() {
			sum, stats, err = engine.DrainPlan(ctx, plan, campaign.QueueOptions{
				Worker: opts.id(),
				TTL:    opts.leaseTTL,
			})
		} else {
			sum, err = engine.RunPlanContext(ctx, plan)
		}
		if err != nil {
			return err
		}
		interrupted := 0
		for _, o := range sum.Outcomes {
			if errors.Is(o.Err, context.Canceled) {
				interrupted++
			}
		}
		fmt.Printf("spd: cycle %d: planned %d/%d cells, ran %d runs, %d failed, %d interrupted, %d total runs recorded\n",
			cycle, plan.RunCount(), len(plan.Cells), sum.CampaignRuns(), sum.Failed()-interrupted, interrupted, sum.TotalRuns)
		if stats != nil {
			// One parseable line per drain: the distributed-smoke CI job
			// sums executed= across all workers' logs to prove no cell ran
			// twice.
			fmt.Printf("spd: cycle %d: queue stats: executed=%d stolen=%d peer_done=%d plan_skips=%d lost=%d waits=%d\n",
				cycle, stats.Executed, stats.Stolen, stats.PeerDone, stats.PlanSkips, stats.Lost, stats.Waits)
		}
	} else {
		fmt.Printf("spd: cycle %d: all %d cells up-to-date, nothing to run\n", cycle, len(plan.Cells))
	}
	if opts.worker {
		// Publishing the site and maintaining the store (index segment,
		// compaction) stay the primary's job; a worker's cycle ends when
		// its cells are recorded.
		return nil
	}
	// Publish even on an all-skip cycle: the hash-skip makes it nearly
	// free when nothing changed, and it repairs a site a previous
	// process failed to publish (or publishes a new -title) that an
	// early return would otherwise never revisit.
	if _, err := sys.PublishReports(opts.title); err != nil {
		return err
	}
	return compactIfWorthwhile(store)
}

// startAPIServer serves the store's versioned API — reads for anyone,
// writes for bearers of token — so `spd -worker` processes can join the
// campaign. It returns the bound address ("addr" may carry port 0).
func startAPIServer(store *storage.Store, addr, token string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", http.StripPrefix("/api/v1", storage.NewAPIHandler(store, nil).EnableWrites(token)))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// runScrubCycle performs one archive-wide integrity pass: build the
// scrub suite from the store's current blob listing, run it through the
// platform driver, and publish. No experiments are registered — the
// scrub's only input is the archive itself — so a scrub daemon starts
// in milliseconds even at quick=false. Damage is a recorded red run,
// not a daemon error: the archive keeps being scrubbed (and served) so
// operators can see the full extent of the rot.
func runScrubCycle(store *storage.Store, opts options, cycle int) error {
	sys := core.NewWith(store, platform.NewRegistry())
	rec, err := sys.Scrub(opts.scrubPage, fmt.Sprintf("archive scrub cycle %d", cycle))
	if err != nil {
		return err
	}
	counts := rec.Counts()
	bad := counts[valtest.OutcomeFail] + counts[valtest.OutcomeError]
	if bad > 0 {
		fmt.Printf("spd: scrub cycle %d: %s: %d of %d pages CORRUPT — see the run's job table\n",
			cycle, rec.RunID, bad, len(rec.Jobs))
	} else {
		fmt.Printf("spd: scrub cycle %d: %s: all %d pages verified clean\n",
			cycle, rec.RunID, len(rec.Jobs))
	}
	if _, err := sys.PublishReports(opts.title); err != nil {
		return err
	}
	return compactIfWorthwhile(store)
}

// compactJournalThreshold is the journal-tail size above which a cycle
// ends with a compaction. Below it, folding the journal would cost more
// than the next Open saves.
const compactJournalThreshold = 256 << 10 // 256 KiB

// compactIfWorthwhile opportunistically folds the store's name journal
// into a snapshot after a cycle, once the tail has grown past the
// threshold. The daemon is the natural place for this: it owns the
// writer lock anyway, runs on a cadence, and is exactly the long-lived
// producer whose journal would otherwise grow without bound. Readers
// (spserve on the same directory) tolerate the compaction live via the
// snapshot generation check in their Refresh.
func compactIfWorthwhile(store *storage.Store) error {
	// Position (not Info): the journal tail length is all the decision
	// needs, and Info would force the lazy blob-statistics walk — an
	// O(blobs) cost the steady-state cycle must not pay.
	pos, ok := store.Position()
	if !ok || pos.Offset < compactJournalThreshold {
		return nil
	}
	cs, err := store.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("spd: compacted store: generation %d, %d journal bytes folded into a %d-byte snapshot\n",
		cs.Generation, cs.JournalBytes, cs.SnapshotBytes)
	return nil
}
