// Command bench2json converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON document (written to stdout), so
// CI can archive every benchmark run as an artifact and the perf
// trajectory accumulates comparable data points instead of log files.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 3x . | bench2json > BENCH_ci.json
//
// Benchmark result lines ("BenchmarkX-8  3  123 ns/op  4 B/op ...") are
// parsed into name/iterations/metrics records, including any custom
// metrics reported with b.ReportMetric; goos/goarch/pkg/cpu header
// lines become document metadata; everything else (the artifact text
// the repository's benchmarks print) is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkStoreBackends/disk-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op" -> 123456, including
	// custom metrics from b.ReportMetric.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the JSON shape bench2json emits.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parse reads go-test bench output and collects header metadata and
// benchmark result lines.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseResult parses one benchmark result line: a name field, an
// iteration count, then (value, unit) pairs.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = val
	}
	return res, true
}
