package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz

=== Figure 3: HERA validation summary matrix ===
          SL5/32 gcc4.1  SL6/64 gcc4.4
H1        OK             OK

BenchmarkFigure3HERAMatrix-8   	       3	 552131933 ns/op	        15.00 cells	       327.0 runs
BenchmarkStoreBackends/memory-8        1	 134460935 ns/op	      1398 blobs	   1117272 storedBytes
BenchmarkStoreBackends/disk-8          1	 671933872 ns/op	      1398 blobs	   1117272 storedBytes
PASS
ok  	repro	4.938s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("metadata = %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	f3 := doc.Benchmarks[0]
	if f3.Name != "BenchmarkFigure3HERAMatrix-8" || f3.Iterations != 3 {
		t.Fatalf("first result = %+v", f3)
	}
	if f3.Metrics["ns/op"] != 552131933 || f3.Metrics["cells"] != 15 || f3.Metrics["runs"] != 327 {
		t.Fatalf("metrics = %v", f3.Metrics)
	}
	disk := doc.Benchmarks[2]
	if disk.Name != "BenchmarkStoreBackends/disk-8" {
		t.Fatalf("third result = %+v", disk)
	}
	if disk.Metrics["blobs"] != 1398 {
		t.Fatalf("disk metrics = %v", disk.Metrics)
	}
}

func TestParseIgnoresArtifactText(t *testing.T) {
	doc, err := parse(strings.NewReader("random line\nBenchmark garbage\nnot even close\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v, want none", doc.Benchmarks)
	}
}

func TestParseRejectsMalformedPairs(t *testing.T) {
	// Odd field count and non-numeric values must be skipped, not crash.
	doc, err := parse(strings.NewReader("BenchmarkX-8 2 100 ns/op trailing\nBenchmarkY-8 two 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v, want none", doc.Benchmarks)
	}
}
