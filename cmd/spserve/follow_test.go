package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/runner"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// TestV1Routes drives the versioned surface and the compatibility
// aliases: every JSON route answers under /api/v1/, errors share the
// envelope, and the pre-v1 paths still answer with deprecation
// pointers at their successors.
func TestV1Routes(t *testing.T) {
	store := storage.NewStore()
	rn := runner.New(store, simclock.New())
	rec := record(t, store, rn, "H1", "baseline", valtest.OutcomePass)
	srv, err := newServer(store, "v1 test", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	t.Run("moved routes", func(t *testing.T) {
		for _, path := range []string{"/api/v1/matrix", "/api/v1/runs", "/api/v1/position", "/api/v1/names", "/api/v1/blobs"} {
			code, body, hdr := get(t, ts, path)
			if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
				t.Errorf("GET %s = %d (%s)", path, code, hdr.Get("Content-Type"))
			}
			if hdr.Get("Deprecation") != "" {
				t.Errorf("GET %s carries a Deprecation header on the v1 surface", path)
			}
			if !json.Valid([]byte(body)) {
				t.Errorf("GET %s is not JSON: %q", path, body)
			}
		}
	})

	t.Run("error envelope", func(t *testing.T) {
		for path, wantCode := range map[string]int{
			"/api/v1/plan":     404, // no plan recorded
			"/api/v1/nope":     404, // unknown API route
			"/api/v1/blob/zzz": 400, // malformed hash
			"/blob/not-a-hash": 400, // legacy alias, same contract
			"/api/v1/blob/" + strings.Repeat("0", 64): 404,
		} {
			code, body, _ := get(t, ts, path)
			if code != wantCode {
				t.Errorf("GET %s = %d, want %d", path, code, wantCode)
			}
			var doc storage.APIErrorDoc
			if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Error.Code == "" || doc.Error.Message == "" {
				t.Errorf("GET %s error body is not the envelope: %q", path, body)
			}
		}
	})

	t.Run("legacy aliases answer with pointers", func(t *testing.T) {
		for legacy, successor := range map[string]string{
			"/api/matrix": "/api/v1/matrix",
			"/api/runs":   "/api/v1/runs",
		} {
			legacyCode, legacyBody, hdr := get(t, ts, legacy)
			v1Code, v1Body, _ := get(t, ts, successor)
			if legacyCode != 200 || v1Code != 200 || legacyBody != v1Body {
				t.Errorf("alias %s diverges from %s", legacy, successor)
			}
			if hdr.Get("Deprecation") != "true" || !strings.Contains(hdr.Get("Link"), successor) {
				t.Errorf("alias %s lacks deprecation pointers: Deprecation=%q Link=%q",
					legacy, hdr.Get("Deprecation"), hdr.Get("Link"))
			}
		}
	})

	t.Run("blob headers", func(t *testing.T) {
		job, _ := rec.Find("keeper")
		hash, err := store.Hash(chain.FilesNS, job.Result.OutputKey)
		if err != nil {
			t.Fatal(err)
		}
		code, body, hdr := get(t, ts, "/api/v1/blob/"+hash)
		if code != 200 {
			t.Fatalf("GET v1 blob = %d", code)
		}
		if got := hdr.Get("Content-Length"); got != fmt.Sprint(len(body)) {
			t.Errorf("Content-Length = %q, body is %d bytes", got, len(body))
		}
		if cc := hdr.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
			t.Errorf("Cache-Control = %q, want immutable", cc)
		}
		if hdr.Get("X-Content-SHA256") != hash || hdr.Get("ETag") != `"`+hash+`"` {
			t.Errorf("verification headers wrong: sha=%q etag=%q", hdr.Get("X-Content-SHA256"), hdr.Get("ETag"))
		}
		// HEAD answers with the same headers and no body.
		resp, err := ts.Client().Head(ts.URL + "/api/v1/blob/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || resp.Header.Get("X-Content-SHA256") != hash {
			t.Errorf("HEAD blob = %d sha=%q", resp.StatusCode, resp.Header.Get("X-Content-SHA256"))
		}
	})

	t.Run("position", func(t *testing.T) {
		code, body, _ := get(t, ts, "/api/v1/position")
		var doc storage.PositionDoc
		if code != 200 || json.Unmarshal([]byte(body), &doc) != nil {
			t.Fatalf("GET /api/v1/position = %d %q", code, body)
		}
		if doc.Bindings == 0 {
			t.Errorf("position reports zero bindings on a populated store: %q", body)
		}
	})
}

// TestFollowerReplication is the tentpole's end-to-end shape
// in-process: a primary spserve over a live store, a follower syncing
// from its API into a replica directory, byte-identical matrix JSON on
// both sides, and /healthz lag that tracks the primary's appends.
func TestFollowerReplication(t *testing.T) {
	// Primary: a writable store a campaign keeps appending to, served
	// by a full spserve handler.
	primaryStore, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primaryStore.Close()
	rn := runner.New(primaryStore, simclock.New())
	record(t, primaryStore, rn, "H1", "first", valtest.OutcomePass)
	record(t, primaryStore, rn, "ZEUS", "second", valtest.OutcomePass)
	primarySrv, err := newServer(primaryStore, "fleet status", 0)
	if err != nil {
		t.Fatal(err)
	}
	primary := httptest.NewServer(primarySrv.handler())
	defer primary.Close()

	// Follower: replicate into a fresh directory and serve it.
	f, err := newFollower(primary.URL, t.TempDir(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	replicaSrv, err := newServer(f.dst, "fleet status", 0)
	if err != nil {
		t.Fatal(err)
	}
	replicaSrv.follow = f
	replica := httptest.NewServer(replicaSrv.handler())
	defer replica.Close()

	// The replica's matrix is byte-identical to the primary's.
	_, pm, _ := get(t, primary, "/api/v1/matrix")
	_, rm, _ := get(t, replica, "/api/v1/matrix")
	if pm != rm {
		t.Fatalf("matrix diverges:\nprimary: %s\nreplica: %s", pm, rm)
	}

	// Replica healthz: position present, lag zero, one sync.
	code, body, _ := get(t, replica, "/healthz")
	if code != 200 {
		t.Fatalf("replica healthz = %d %q", code, body)
	}
	var health struct {
		Status   string            `json:"status"`
		Position *storage.Position `json:"position"`
		Follow   *followStatus     `json:"follow"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Position == nil || health.Follow == nil {
		t.Fatalf("replica healthz shape: %q", body)
	}
	if health.Follow.LagBytes != 0 || health.Follow.Syncs != 1 {
		t.Fatalf("follow block after sync = %+v, want lag 0 after 1 sync", health.Follow)
	}

	// The primary advances: lag goes positive without a sync, returns
	// to zero after one, and the new run is served by the replica.
	rec := record(t, primaryStore, rn, "H1", "appended while replicated", valtest.OutcomePass)
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes <= 0 {
		t.Fatalf("lag after primary append = %d, want > 0", health.Follow.LagBytes)
	}
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes != 0 || health.Follow.Syncs != 2 {
		t.Fatalf("follow block after re-sync = %+v", health.Follow)
	}
	if code, page, _ := get(t, replica, "/runs/"+rec.RunID); code != 200 || !strings.Contains(page, rec.Description) {
		t.Fatalf("replica run page for %s = %d", rec.RunID, code)
	}
	_, pm, _ = get(t, primary, "/api/v1/matrix")
	_, rm, _ = get(t, replica, "/api/v1/matrix")
	if pm != rm {
		t.Fatalf("matrix diverges after re-sync:\nprimary: %s\nreplica: %s", pm, rm)
	}

	// The primary going away degrades the replica's health but not its
	// pages.
	primary.Close()
	f.rb.SetSleep(func(time.Duration) {}) // fail the down-probe fast
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes != -1 || health.Follow.SourceErr == "" {
		t.Fatalf("follow block with primary down = %+v", health.Follow)
	}
	if code, _, _ := get(t, replica, "/api/v1/runs"); code != 200 {
		t.Fatalf("replica pages down with primary down: %d", code)
	}
}
