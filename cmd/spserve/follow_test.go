package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/valtest"
)

// TestFollowerReplication is the multi-site topology's end-to-end shape
// in-process: a primary spserve over a live store, a follower syncing
// from its API into a replica directory, byte-identical matrix JSON on
// both sides, and /healthz lag that tracks the primary's appends.
func TestFollowerReplication(t *testing.T) {
	// Primary: a writable store a campaign keeps appending to, served
	// by a full spserve handler.
	primaryStore, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primaryStore.Close()
	rn := runner.New(primaryStore, simclock.New())
	record(t, primaryStore, rn, "H1", "first", valtest.OutcomePass)
	record(t, primaryStore, rn, "ZEUS", "second", valtest.OutcomePass)
	primarySrv, err := serve.New(primaryStore, "fleet status", 0)
	if err != nil {
		t.Fatal(err)
	}
	primary := httptest.NewServer(primarySrv.Handler())
	defer primary.Close()

	// Follower: replicate into a fresh directory and serve it.
	f, err := newFollower(primary.URL, t.TempDir(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	replicaSrv, err := serve.New(f.dst, "fleet status", 0)
	if err != nil {
		t.Fatal(err)
	}
	replicaSrv.SetFollow(f)
	replica := httptest.NewServer(replicaSrv.Handler())
	defer replica.Close()

	// The replica's matrix is byte-identical to the primary's.
	_, pm, _ := get(t, primary, "/api/v1/matrix")
	_, rm, _ := get(t, replica, "/api/v1/matrix")
	if pm != rm {
		t.Fatalf("matrix diverges:\nprimary: %s\nreplica: %s", pm, rm)
	}

	// Replica healthz: position present, lag zero, one sync.
	code, body, _ := get(t, replica, "/healthz")
	if code != 200 {
		t.Fatalf("replica healthz = %d %q", code, body)
	}
	var health struct {
		Status   string              `json:"status"`
		Position *storage.Position   `json:"position"`
		Follow   *serve.FollowStatus `json:"follow"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Position == nil || health.Follow == nil {
		t.Fatalf("replica healthz shape: %q", body)
	}
	if health.Follow.LagBytes != 0 || health.Follow.Syncs != 1 {
		t.Fatalf("follow block after sync = %+v, want lag 0 after 1 sync", health.Follow)
	}

	// The primary advances: lag goes positive without a sync, returns
	// to zero after one, and the new run is served by the replica.
	rec := record(t, primaryStore, rn, "H1", "appended while replicated", valtest.OutcomePass)
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes <= 0 {
		t.Fatalf("lag after primary append = %d, want > 0", health.Follow.LagBytes)
	}
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes != 0 || health.Follow.Syncs != 2 {
		t.Fatalf("follow block after re-sync = %+v", health.Follow)
	}
	if code, page, _ := get(t, replica, "/runs/"+rec.RunID); code != 200 || !strings.Contains(page, rec.Description) {
		t.Fatalf("replica run page for %s = %d", rec.RunID, code)
	}
	_, pm, _ = get(t, primary, "/api/v1/matrix")
	_, rm, _ = get(t, replica, "/api/v1/matrix")
	if pm != rm {
		t.Fatalf("matrix diverges after re-sync:\nprimary: %s\nreplica: %s", pm, rm)
	}

	// The primary going away degrades the replica's health but not its
	// pages.
	primary.Close()
	f.rb.SetSleep(func(time.Duration) {}) // fail the down-probe fast
	_, body, _ = get(t, replica, "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Follow.LagBytes != -1 || health.Follow.SourceErr == "" {
		t.Fatalf("follow block with primary down = %+v", health.Follow)
	}
	if code, _, _ := get(t, replica, "/api/v1/runs"); code != 200 {
		t.Fatalf("replica pages down with primary down: %d", code)
	}
}

// TestFollowerConvergedTickShortCircuit pins the cadence-tick fast
// path: once a follower has converged, a tick on an unmoved primary
// costs one /position probe — no name walk, no blob listing — and is
// counted as a skipped sync. A moved primary falls back to the full
// pass.
func TestFollowerConvergedTickShortCircuit(t *testing.T) {
	primaryStore, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primaryStore.Close()
	rn := runner.New(primaryStore, simclock.New())
	record(t, primaryStore, rn, "H1", "first", valtest.OutcomePass)
	primarySrv, err := serve.New(primaryStore, "primary", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Count what the follower actually asks the primary for.
	var nameWalks, posProbes atomic.Int64
	inner := primarySrv.Handler()
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/names"), strings.HasSuffix(r.URL.Path, "/blobs"):
			nameWalks.Add(1)
		case strings.HasSuffix(r.URL.Path, "/position"):
			posProbes.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer primary.Close()

	f, err := newFollower(primary.URL, t.TempDir(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	walksAfterFirst := nameWalks.Load()
	if walksAfterFirst == 0 {
		t.Fatal("first sync did not walk the primary's listings")
	}

	// Converged ticks: the probe answers "unmoved" and the walk is
	// skipped.
	for i := 0; i < 3; i++ {
		if err := f.sync(); err != nil {
			t.Fatal(err)
		}
	}
	if nameWalks.Load() != walksAfterFirst {
		t.Fatalf("converged ticks walked listings: %d → %d", walksAfterFirst, nameWalks.Load())
	}
	probes := posProbes.Load()
	if probes < 3 {
		t.Fatalf("converged ticks probed /position %d times, want ≥ 3", probes)
	}
	fs := f.FollowStatus()
	if fs.Syncs != 1 || fs.SkippedSyncs != 3 {
		t.Fatalf("status after converged ticks = %+v, want 1 sync and 3 skips", fs)
	}
	if fs.LagBytes != 0 {
		t.Fatalf("converged lag = %d, want 0", fs.LagBytes)
	}

	// The primary advances: the next tick sees the moved position and
	// runs the full pass again.
	rec := record(t, primaryStore, rn, "H1", "second", valtest.OutcomePass)
	if err := f.sync(); err != nil {
		t.Fatal(err)
	}
	if nameWalks.Load() <= walksAfterFirst {
		t.Fatal("moved primary did not trigger a full pass")
	}
	fs = f.FollowStatus()
	if fs.Syncs != 2 || fs.SkippedSyncs != 3 {
		t.Fatalf("status after catch-up = %+v, want 2 syncs and 3 skips", fs)
	}
	if fs.LagBytes != 0 {
		t.Fatalf("post-catch-up lag = %d, want 0", fs.LagBytes)
	}
	if _, err := f.dst.Get(runner.RunsNS, rec.RunID); err != nil {
		t.Fatalf("replica missing the caught-up run %s: %v", rec.RunID, err)
	}
}
