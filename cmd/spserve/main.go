// Command spserve is the sp-system's live status service: the paper's
// §3.3 "script-based web pages ... used to record and display available
// validation runs", served to the collaboration as a long-running HTTP
// service instead of a batch-regenerated directory of files.
//
// It serves the Figure 3 status matrix, per-run pages,
// diffs-against-last-success, kept output artifacts, and JSON
// equivalents, live from a durable on-disk common storage — including
// one that a separate `spsys campaign -store DIR` process is writing at
// the same time. That works because spserve opens the store through
// storage.OpenReadOnly: a shared-lock, no-repair read view that re-tails
// the store's name journal to pick up the writer's appends, feeding an
// incremental bookkeep.Index so a page view costs memory lookups, not
// per-query record loads. The serving tier itself lives in
// internal/serve; this command is the flag parsing, the store opening
// and the follower loop around it.
//
// Usage:
//
//	spserve -store ./spstore [-addr :8344] [-title "..."] [-refresh 1s]
//
// -store also accepts an http(s) URL of another spserve's store API, in
// which case this instance relays a remote store's read surface.
//
// Endpoints (the route table and compatibility policy live in
// DESIGN.md):
//
//	/                    HTML status matrix (Figure 3), with a
//	                     freshness column when the store carries a
//	                     recorded campaign plan
//	/runs/{id}           HTML page for one validation run
//	/diff/{id}           text diff against the last successful baseline
//	/events              Server-Sent Events push: run-recorded,
//	                     plan-recorded, generation-changed
//	/api/v1/matrix       JSON status matrix (cells carry input digests)
//	/api/v1/plan         JSON form of the last recorded campaign plan
//	/api/v1/runs         JSON run list, paginated: ?limit= (default
//	                     500, capped at 5000), ?after= cursor,
//	                     ?experiment= filter
//	/api/v1/blob/{hash}  raw content by hash, under immutable cache
//	                     headers; malformed hashes are 400s before the
//	                     backend is touched
//	/api/v1/names        paged name-binding listing (?after=, ?limit=)
//	/api/v1/blobs        paged blob listing with sizes
//	/api/v1/position     journal position + snapshot generation
//	/healthz             liveness, store freshness, the served store's
//	                     position, cache counters, and — on a follower —
//	                     replication lag
//
// Every dynamic route carries a strong position-keyed ETag and answers
// If-None-Match revalidations with 304 before touching the index;
// HTML and JSON bodies negotiate gzip. The caching contract is
// documented in internal/serve. Every JSON error under /api/v1/ shares
// one envelope: {"error":{"code":"...","message":"..."}}. The pre-v1
// alias routes (/blob/{hash}, /api/matrix, /api/plan, /api/runs)
// served their announced one-release deprecation window and have been
// removed; they are plain 404s now.
//
// Follower mode turns spserve into a read-only replica of another
// spserve's store:
//
//	spserve -store ./replica -follow http://primary:8344 [-every 30s]
//
// The replica directory is synced from the primary's store API before
// serving and re-synced on the -every cadence; /healthz gains a follow
// block reporting the replication lag in source-journal bytes
// (lag_bytes == 0 means the replica covers everything the primary had
// at the last sync and nothing has landed since). A cadence tick first
// probes the primary's /position and skips the full sync walk when
// nothing moved, so a converged follower costs one round trip per
// tick. The primary keeps its single writer; followers scale out
// reads.
//
// -refresh bounds how often the journal is re-tailed: at most one
// refresh per interval, taken lazily on request arrival, so an idle
// service does no work and a busy one amortizes the (already cheap)
// catch-up across requests.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/storage"
)

func main() {
	storeDir := flag.String("store", "", "directory or http(s) URL of the durable common storage (required)")
	addr := flag.String("addr", ":8344", "listen address")
	title := flag.String("title", "sp-system validation status", "page title")
	refresh := flag.Duration("refresh", time.Second, "minimum interval between store re-tails (0: every request)")
	follow := flag.String("follow", "", "primary store URL to replicate -store from (follower mode)")
	every := flag.Duration("every", 30*time.Second, "re-sync cadence in follower mode")
	flag.Parse()

	if err := run(*storeDir, *addr, *title, *refresh, *follow, *every); err != nil {
		fmt.Fprintln(os.Stderr, "spserve:", err)
		os.Exit(1)
	}
}

func run(storeDir, addr, title string, refresh time.Duration, followURL string, every time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	var (
		store *storage.Store
		f     *follower
		err   error
	)
	if followURL != "" {
		// Follower: the replica directory is this process's store, and
		// this process is its only writer.
		f, err = newFollower(followURL, storeDir, every)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.sync(); err != nil {
			return fmt.Errorf("initial sync from %s: %w", followURL, err)
		}
		store = f.dst
	} else {
		// Directory: the shared-lock read-only view. URL: the remote
		// view of another spserve's store API (a relay).
		store, err = storage.OpenView(storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
	}
	srv, err := serve.New(store, title, refresh)
	if err != nil {
		return err
	}
	if f != nil {
		srv.SetFollow(f)
		stop := make(chan struct{})
		defer close(stop)
		go f.loop(stop)
		fmt.Printf("spserve: replica of %s in %s on %s, re-syncing every %v (%d runs indexed)\n",
			followURL, storeDir, addr, every, srv.TotalRuns())
	} else {
		fmt.Printf("spserve: serving %s on %s (%d runs indexed)\n", storeDir, addr, srv.TotalRuns())
	}
	return http.ListenAndServe(addr, srv.Handler())
}
