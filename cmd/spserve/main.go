// Command spserve is the sp-system's live status service: the paper's
// §3.3 "script-based web pages ... used to record and display available
// validation runs", served to the collaboration as a long-running HTTP
// service instead of a batch-regenerated directory of files.
//
// It serves the Figure 3 status matrix, per-run pages,
// diffs-against-last-success, kept output artifacts, and JSON
// equivalents, live from a durable on-disk common storage — including
// one that a separate `spsys campaign -store DIR` process is writing at
// the same time. That works because spserve opens the store through
// storage.OpenReadOnly: a shared-lock, no-repair read view that re-tails
// the store's name journal to pick up the writer's appends, feeding an
// incremental bookkeep.Index so a page view costs memory lookups, not
// per-query record loads.
//
// Usage:
//
//	spserve -store ./spstore [-addr :8344] [-title "..."] [-refresh 1s]
//
// Endpoints:
//
//	/            HTML status matrix (Figure 3)
//	/runs/{id}   HTML page for one validation run
//	/diff/{id}   text diff of a run against its last successful baseline
//	/blob/{hash} raw kept artifact by content hash
//	/api/matrix  JSON status matrix
//	/api/runs    JSON run list
//	/healthz     liveness + store freshness
//
// -refresh bounds how often the journal is re-tailed: at most one
// refresh per interval, taken lazily on request arrival, so an idle
// service does no work and a busy one amortizes the (already cheap)
// catch-up across requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/chain"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	storeDir := flag.String("store", "", "directory of the durable on-disk common storage (required)")
	addr := flag.String("addr", ":8344", "listen address")
	title := flag.String("title", "sp-system validation status", "page title")
	refresh := flag.Duration("refresh", time.Second, "minimum interval between store re-tails (0: every request)")
	flag.Parse()

	if err := run(*storeDir, *addr, *title, *refresh); err != nil {
		fmt.Fprintln(os.Stderr, "spserve:", err)
		os.Exit(1)
	}
}

func run(storeDir, addr, title string, refresh time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	store, err := storage.OpenReadOnly(storeDir)
	if err != nil {
		return err
	}
	defer store.Close()
	srv, err := newServer(store, title, refresh)
	if err != nil {
		return err
	}
	fmt.Printf("spserve: serving %s on %s (%d runs indexed)\n", storeDir, addr, srv.index.TotalRuns())
	return http.ListenAndServe(addr, srv.handler())
}

// server holds the read view, the incremental index over it, and the
// refresh throttle. It is safe for concurrent request handling: the
// store view and index are individually thread-safe, and the throttle
// state sits behind its own mutex.
type server struct {
	store *storage.Store
	index *bookkeep.Index
	title string

	refreshEvery time.Duration
	mu           sync.Mutex
	lastRefresh  time.Time
	lastErr      error
}

// newServer builds a server over any Store (the read-only disk view in
// production, an in-memory store in tests) with the index fully loaded.
func newServer(store *storage.Store, title string, refreshEvery time.Duration) (*server, error) {
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return nil, err
	}
	return &server{store: store, index: x, title: title, refreshEvery: refreshEvery, lastRefresh: time.Now()}, nil
}

// refresh re-tails the store and catches the index up, at most once per
// refreshEvery. A refresh failure is remembered for /healthz but does
// not take pages down — the service keeps answering from its last good
// state.
func (s *server) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refreshEvery > 0 && time.Since(s.lastRefresh) < s.refreshEvery {
		return
	}
	s.lastRefresh = time.Now()
	if err := s.store.Refresh(); err != nil {
		s.lastErr = err
		return
	}
	s.lastErr = s.index.Refresh()
}

// handler wires the endpoint table. Path parameters are parsed by
// hand, keeping the mux compatible with every supported Go version.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveMatrix)
	mux.HandleFunc("/runs/", s.serveRun)
	mux.HandleFunc("/diff/", s.serveDiff)
	mux.HandleFunc("/blob/", s.serveBlob)
	mux.HandleFunc("/api/matrix", s.serveAPIMatrix)
	mux.HandleFunc("/api/runs", s.serveAPIRuns)
	mux.HandleFunc("/healthz", s.serveHealthz)
	return mux
}

func (s *server) serveMatrix(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r) // the catch-all pattern must not answer for arbitrary paths
		return
	}
	s.refresh()
	page, err := report.HTMLMatrixLinked(s.title, s.index.Matrix(), s.index.TotalRuns(),
		func(runID string) string { return "/runs/" + runID })
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// pathParam extracts the single path parameter after prefix, rejecting
// empty values and further slashes.
func pathParam(path, prefix string) (string, bool) {
	p := strings.TrimPrefix(path, prefix)
	if p == "" || strings.Contains(p, "/") {
		return "", false
	}
	return p, true
}

func (s *server) serveRun(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/runs/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// Output links are content-addressed: resolve each kept artifact's
	// storage key to its blob hash at render time, so the link stays
	// valid forever even if the key were ever rebound. Chain tests keep
	// outputs in the files namespace; build jobs keep their tarballs in
	// the artifacts namespace.
	page, err := report.HTMLRunLinked(rec, func(key string) string {
		for _, ns := range []string{chain.FilesNS, buildsys.ArtifactNS} {
			if hash, err := s.store.Hash(ns, key); err == nil {
				return "/blob/" + hash
			}
		}
		return "" // not yet visible through the read view: no link
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

func (s *server) serveDiff(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/diff/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	d, err := s.index.DiffAgainstLastSuccess(rec)
	if err != nil {
		// The run exists but has no successful predecessor — a normal
		// state for the first runs of an experiment, not a 404.
		fmt.Fprintf(w, "no baseline for %s: %v\n", id, err)
		return
	}
	fmt.Fprint(w, report.TextDiff(d))
}

func (s *server) serveBlob(w http.ResponseWriter, r *http.Request) {
	hash, ok := pathParam(r.URL.Path, "/blob/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	data, err := s.store.GetBlob(hash)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *server) serveAPIMatrix(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	writeJSON(w, struct {
		Title     string          `json:"title"`
		TotalRuns int             `json:"total_runs"`
		Cells     []bookkeep.Cell `json:"cells"`
	}{s.title, s.index.TotalRuns(), s.index.Matrix()})
}

// runSummary is one /api/runs entry.
type runSummary struct {
	RunID       string `json:"run_id"`
	Description string `json:"description"`
	Experiment  string `json:"experiment"`
	Config      string `json:"config"`
	Externals   string `json:"externals"`
	Revision    int    `json:"revision"`
	Timestamp   int64  `json:"timestamp"`
	Jobs        int    `json:"jobs"`
	Passed      bool   `json:"passed"`
}

func (s *server) serveAPIRuns(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	recs := s.index.Runs()
	out := make([]runSummary, len(recs))
	for i, rec := range recs {
		out[i] = runSummary{
			RunID: rec.RunID, Description: rec.Description, Experiment: rec.Experiment,
			Config: rec.Config, Externals: rec.Externals, Revision: rec.RepoRevision,
			Timestamp: rec.Timestamp, Jobs: len(rec.Jobs), Passed: rec.Passed(),
		}
	}
	writeJSON(w, struct {
		Runs []runSummary `json:"runs"`
	}{out})
}

func (s *server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	errText := ""
	if lastErr != nil {
		// Still serving (from the last good state), but stale: say so.
		status, code, errText = "degraded", http.StatusServiceUnavailable, lastErr.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		Runs    int    `json:"runs"`
		LastErr string `json:"last_error,omitempty"`
	}{status, s.index.TotalRuns(), errText})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
