// Command spserve is the sp-system's live status service: the paper's
// §3.3 "script-based web pages ... used to record and display available
// validation runs", served to the collaboration as a long-running HTTP
// service instead of a batch-regenerated directory of files.
//
// It serves the Figure 3 status matrix, per-run pages,
// diffs-against-last-success, kept output artifacts, and JSON
// equivalents, live from a durable on-disk common storage — including
// one that a separate `spsys campaign -store DIR` process is writing at
// the same time. That works because spserve opens the store through
// storage.OpenReadOnly: a shared-lock, no-repair read view that re-tails
// the store's name journal to pick up the writer's appends, feeding an
// incremental bookkeep.Index so a page view costs memory lookups, not
// per-query record loads.
//
// Usage:
//
//	spserve -store ./spstore [-addr :8344] [-title "..."] [-refresh 1s]
//
// -store also accepts an http(s) URL of another spserve's store API, in
// which case this instance relays a remote store's read surface.
//
// Endpoints (the route table and compatibility policy live in
// DESIGN.md):
//
//	/                    HTML status matrix (Figure 3), with a
//	                     freshness column when the store carries a
//	                     recorded campaign plan
//	/runs/{id}           HTML page for one validation run
//	/diff/{id}           text diff against the last successful baseline
//	/api/v1/matrix       JSON status matrix (cells carry input digests)
//	/api/v1/plan         JSON form of the last recorded campaign plan
//	/api/v1/runs         JSON run list, paginated: ?limit= (default
//	                     500, capped at 5000), ?after= cursor,
//	                     ?experiment= filter
//	/api/v1/blob/{hash}  raw content by hash, under immutable cache
//	                     headers; malformed hashes are 400s before the
//	                     backend is touched
//	/api/v1/names        paged name-binding listing (?after=, ?limit=)
//	/api/v1/blobs        paged blob listing with sizes
//	/api/v1/position     journal position + snapshot generation
//	/healthz             liveness, store freshness, the served store's
//	                     position, and — on a follower — replication lag
//
// Every JSON error under /api/v1/ (and the legacy aliases) shares one
// envelope: {"error":{"code":"...","message":"..."}}. The pre-v1
// routes /blob/{hash}, /api/matrix, /api/plan and /api/runs remain as
// deprecated aliases for one release; they answer normally but carry
// Deprecation and Link headers naming their successors.
//
// Follower mode turns spserve into a read-only replica of another
// spserve's store:
//
//	spserve -store ./replica -follow http://primary:8344 [-every 30s]
//
// The replica directory is synced from the primary's store API before
// serving and re-synced on the -every cadence; /healthz gains a follow
// block reporting the replication lag in source-journal bytes
// (lag_bytes == 0 means the replica covers everything the primary had
// at the last sync and nothing has landed since). The primary keeps
// its single writer; followers scale out reads.
//
// -refresh bounds how often the journal is re-tailed: at most one
// refresh per interval, taken lazily on request arrival, so an idle
// service does no work and a busy one amortizes the (already cheap)
// catch-up across requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/campaign"
	"repro/internal/chain"
	"repro/internal/cron"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	storeDir := flag.String("store", "", "directory or http(s) URL of the durable common storage (required)")
	addr := flag.String("addr", ":8344", "listen address")
	title := flag.String("title", "sp-system validation status", "page title")
	refresh := flag.Duration("refresh", time.Second, "minimum interval between store re-tails (0: every request)")
	follow := flag.String("follow", "", "primary store URL to replicate -store from (follower mode)")
	every := flag.Duration("every", 30*time.Second, "re-sync cadence in follower mode")
	flag.Parse()

	if err := run(*storeDir, *addr, *title, *refresh, *follow, *every); err != nil {
		fmt.Fprintln(os.Stderr, "spserve:", err)
		os.Exit(1)
	}
}

func run(storeDir, addr, title string, refresh time.Duration, followURL string, every time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	var (
		store *storage.Store
		f     *follower
		err   error
	)
	if followURL != "" {
		// Follower: the replica directory is this process's store, and
		// this process is its only writer.
		f, err = newFollower(followURL, storeDir, every)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.sync(); err != nil {
			return fmt.Errorf("initial sync from %s: %w", followURL, err)
		}
		store = f.dst
	} else {
		// Directory: the shared-lock read-only view. URL: the remote
		// view of another spserve's store API (a relay).
		store, err = storage.OpenView(storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
	}
	srv, err := newServer(store, title, refresh)
	if err != nil {
		return err
	}
	srv.follow = f
	if f != nil {
		stop := make(chan struct{})
		defer close(stop)
		go f.loop(stop)
		fmt.Printf("spserve: replica of %s in %s on %s, re-syncing every %v (%d runs indexed)\n",
			followURL, storeDir, addr, every, srv.index.TotalRuns())
	} else {
		fmt.Printf("spserve: serving %s on %s (%d runs indexed)\n", storeDir, addr, srv.index.TotalRuns())
	}
	return http.ListenAndServe(addr, srv.handler())
}

// server holds the read view, the incremental index over it, and the
// refresh throttle. It is safe for concurrent request handling: the
// store view and index are individually thread-safe, and the throttle
// state sits behind its own mutex.
type server struct {
	store *storage.Store
	index *bookkeep.Index
	title string
	// follow is non-nil in follower mode; /healthz surfaces its
	// replication status.
	follow *follower

	refreshEvery time.Duration
	// now is the clock source behind the refresh throttle: cron.Wall()
	// in production, a hand-advanced function in tests (the same seam
	// shape as cron.Driver), so throttle behavior is testable without
	// sleeping.
	now func() time.Time

	mu          sync.Mutex
	lastRefresh time.Time // guarded by mu
	lastErr     error     // guarded by mu
	// planRec and planNotes cache the store's latest recorded campaign
	// plan, reloaded inside the throttled refresh so matrix-page and
	// /api/plan traffic never pays a store read per request.
	planRec   *campaign.PlanRecord // guarded by mu
	planNotes map[string]string    // guarded by mu
}

// newServer builds a server over any Store (the read-only disk view in
// production, an in-memory store in tests) with the index fully loaded.
func newServer(store *storage.Store, title string, refreshEvery time.Duration) (*server, error) {
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return nil, err
	}
	now := cron.Wall()
	s := &server{store: store, index: x, title: title, refreshEvery: refreshEvery, now: now, lastRefresh: now()}
	s.reloadPlanLocked()
	return s, nil
}

// refresh re-tails the store and catches the index up, at most once per
// refreshEvery. A refresh failure is remembered for /healthz but does
// not take pages down — the service keeps answering from its last good
// state.
func (s *server) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refreshEvery > 0 && s.now().Sub(s.lastRefresh) < s.refreshEvery {
		return
	}
	s.lastRefresh = s.now()
	if err := s.store.Refresh(); err != nil {
		s.lastErr = err
		return
	}
	s.lastErr = s.index.Refresh()
	s.reloadPlanLocked()
}

// reloadPlanLocked refreshes the cached producer plan and its per-cell
// note map. The caller holds s.mu (or, in newServer, sole ownership).
// A plan load *failure* (corrupt record) keeps the last good plan —
// freshness annotations go stale rather than taking pages down — but a
// store that simply has no plan clears the cache: the read view
// survives the store being torn down and recreated (Store.Refresh
// reloads it), and the old store's plan must not describe the new
// store's cells.
func (s *server) reloadPlanLocked() {
	plan, err := campaign.LoadLatestPlan(s.store)
	if err != nil {
		return
	}
	if plan == nil {
		s.planRec, s.planNotes = nil, nil
		return
	}
	notes := make(map[string]string, len(plan.Cells))
	for _, c := range plan.Cells {
		if c.Decision == "skip" {
			// An executed cell outranks a skipped one when a plan
			// touches the same (experiment, config, externals) twice.
			if _, dup := notes[c.Key()]; !dup {
				notes[c.Key()] = "up-to-date (" + c.PriorRunID + ")"
			}
		} else {
			notes[c.Key()] = "revalidated"
		}
	}
	s.planRec, s.planNotes = plan, notes
}

// handler wires the endpoint table (DESIGN.md holds the same table
// with the compatibility policy). Path parameters are parsed by hand,
// keeping the mux compatible with every supported Go version. The
// store-level routes (blob/names/blobs/position) come from the storage
// package's APIHandler — the same handler the remote backend is the
// client of — wired to this server's throttled refresh; the exact
// patterns for matrix/plan/runs win over the /api/v1/ subtree mount.
func (s *server) handler() http.Handler {
	api := storage.NewAPIHandler(s.store, s.refresh)
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveMatrix)
	mux.HandleFunc("/runs/", s.serveRun)
	mux.HandleFunc("/diff/", s.serveDiff)
	mux.HandleFunc("/healthz", s.serveHealthz)

	// The versioned JSON surface.
	mux.Handle("/api/v1/", http.StripPrefix("/api/v1", api))
	mux.HandleFunc("/api/v1/matrix", s.serveAPIMatrix)
	mux.HandleFunc("/api/v1/plan", s.serveAPIPlan)
	mux.HandleFunc("/api/v1/runs", s.serveAPIRuns)

	// Pre-v1 aliases, kept for one release: same handlers, with
	// deprecation pointers at their successors. The /blob/ paths match
	// the APIHandler's expected shape without stripping.
	mux.Handle("/blob/", deprecated("/api/v1/blob/", api))
	mux.Handle("/api/matrix", deprecated("/api/v1/matrix", http.HandlerFunc(s.serveAPIMatrix)))
	mux.Handle("/api/plan", deprecated("/api/v1/plan", http.HandlerFunc(s.serveAPIPlan)))
	mux.Handle("/api/runs", deprecated("/api/v1/runs", http.HandlerFunc(s.serveAPIRuns)))
	return mux
}

// deprecated wraps a legacy route so every response names its
// /api/v1 successor; clients migrate on their own schedule within the
// one-release window.
func deprecated(successor string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h.ServeHTTP(w, r)
	})
}

func (s *server) serveMatrix(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r) // the catch-all pattern must not answer for arbitrary paths
		return
	}
	s.refresh()
	page, err := report.HTMLMatrixNoted(s.title, s.index.Matrix(), s.index.TotalRuns(),
		func(runID string) string { return "/runs/" + runID }, s.planNote())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// pathParam extracts the single path parameter after prefix, rejecting
// empty values and further slashes.
func pathParam(path, prefix string) (string, bool) {
	p := strings.TrimPrefix(path, prefix)
	if p == "" || strings.Contains(p, "/") {
		return "", false
	}
	return p, true
}

func (s *server) serveRun(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/runs/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// Output links are content-addressed: resolve each kept artifact's
	// storage key to its blob hash at render time, so the link stays
	// valid forever even if the key were ever rebound. Chain tests keep
	// outputs in the files namespace; build jobs keep their tarballs in
	// the artifacts namespace.
	page, err := report.HTMLRunLinked(rec, func(key string) string {
		for _, ns := range []string{chain.FilesNS, buildsys.ArtifactNS} {
			if hash, err := s.store.Hash(ns, key); err == nil {
				return "/blob/" + hash
			}
		}
		return "" // not yet visible through the read view: no link
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

func (s *server) serveDiff(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/diff/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	d, err := s.index.DiffAgainstLastSuccess(rec)
	if err != nil {
		// The run exists but has no successful predecessor — a normal
		// state for the first runs of an experiment, not a 404.
		fmt.Fprintf(w, "no baseline for %s: %v\n", id, err)
		return
	}
	fmt.Fprint(w, report.TextDiff(d))
}

// planNote maps the cached producer plan onto matrix cells:
// "up-to-date (run-NNNN)" for cells the producer skipped,
// "revalidated" for cells it executed. It returns nil (no freshness
// column) when the store carries no plan — e.g. one recorded before the
// planner existed.
func (s *server) planNote() func(bookkeep.Cell) string {
	s.mu.Lock()
	notes := s.planNotes
	s.mu.Unlock()
	if notes == nil {
		return nil
	}
	return func(c bookkeep.Cell) string {
		return notes[campaign.CellKey(c.Experiment, c.Config, c.Externals)]
	}
}

func (s *server) serveAPIPlan(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	plan := s.planRec
	s.mu.Unlock()
	if plan == nil {
		storage.WriteAPIError(w, http.StatusNotFound, "not_found", "no campaign plan recorded")
		return
	}
	writeJSON(w, plan)
}

func (s *server) serveAPIMatrix(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	writeJSON(w, struct {
		Title     string          `json:"title"`
		TotalRuns int             `json:"total_runs"`
		Cells     []bookkeep.Cell `json:"cells"`
	}{s.title, s.index.TotalRuns(), s.index.Matrix()})
}

// runSummary is one /api/runs entry.
type runSummary struct {
	RunID       string `json:"run_id"`
	Description string `json:"description"`
	Experiment  string `json:"experiment"`
	Config      string `json:"config"`
	Externals   string `json:"externals"`
	Revision    int    `json:"revision"`
	Timestamp   int64  `json:"timestamp"`
	Jobs        int    `json:"jobs"`
	Passed      bool   `json:"passed"`
}

// Pagination bounds for /api/runs: the default page, and the hard cap a
// client-supplied limit is clamped to. No request can make the service
// serialize the full run list of a long-lived archive.
const (
	defaultRunsLimit = 500
	maxRunsLimit     = 5000
)

// parseRunsQuery extracts limit/after/experiment from the request, with
// clamped defaults.
func parseRunsQuery(r *http.Request) (limit int, after, experiment string) {
	q := r.URL.Query()
	limit = defaultRunsLimit
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	if limit > maxRunsLimit {
		limit = maxRunsLimit
	}
	return limit, q.Get("after"), q.Get("experiment")
}

// serveAPIRuns answers the paged run listing: up to `limit` runs
// (default 500, capped) strictly after the `after` cursor, in execution
// order, with `next_after` carrying the cursor for the following page
// ("" on the last page). `experiment` restricts the walk to one
// experiment's runs via its per-experiment cursor.
func (s *server) serveAPIRuns(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	limit, after, experiment := parseRunsQuery(r)
	var metas []*bookkeep.RunMeta
	var next string
	total := s.index.TotalRuns()
	if experiment != "" {
		metas, next = s.index.RunsForPage(experiment, "", after, limit)
		total = s.index.TotalRunsFor(experiment)
	} else {
		metas, next = s.index.RunsPage(after, limit)
	}
	out := make([]runSummary, len(metas))
	for i, m := range metas {
		out[i] = runSummary{
			RunID: m.RunID, Description: m.Description, Experiment: m.Experiment,
			Config: m.Config, Externals: m.Externals, Revision: m.Revision,
			Timestamp: m.Timestamp, Jobs: m.Jobs, Passed: m.Passed,
		}
	}
	writeJSON(w, struct {
		Runs      []runSummary `json:"runs"`
		Total     int          `json:"total"` // runs in the listing's scope (the experiment's when filtered)
		NextAfter string       `json:"next_after,omitempty"`
	}{out, total, next})
}

// healthDoc is the /healthz body. Position carries the served store's
// journal position + snapshot generation (absent on stores without
// positional history); Follow appears on replicas.
type healthDoc struct {
	Status   string            `json:"status"`
	Runs     int               `json:"runs"`
	Position *storage.Position `json:"position,omitempty"`
	Follow   *followStatus     `json:"follow,omitempty"`
	LastErr  string            `json:"last_error,omitempty"`
}

func (s *server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	doc := healthDoc{Status: "ok", Runs: s.index.TotalRuns()}
	code := http.StatusOK
	if lastErr != nil {
		// Still serving (from the last good state), but stale: say so.
		doc.Status, code, doc.LastErr = "degraded", http.StatusServiceUnavailable, lastErr.Error()
	}
	if pos, ok := s.store.Position(); ok {
		doc.Position = &pos
	}
	if s.follow != nil {
		fs := s.follow.status()
		doc.Follow = &fs
		if fs.LastSyncErr != "" && doc.Status == "ok" {
			// The replica serves its last good state, but it is falling
			// behind: degraded, same as a failed re-tail.
			doc.Status, code = "degraded", http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
