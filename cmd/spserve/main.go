// Command spserve is the sp-system's live status service: the paper's
// §3.3 "script-based web pages ... used to record and display available
// validation runs", served to the collaboration as a long-running HTTP
// service instead of a batch-regenerated directory of files.
//
// It serves the Figure 3 status matrix, per-run pages,
// diffs-against-last-success, kept output artifacts, and JSON
// equivalents, live from a durable on-disk common storage — including
// one that a separate `spsys campaign -store DIR` process is writing at
// the same time. That works because spserve opens the store through
// storage.OpenReadOnly: a shared-lock, no-repair read view that re-tails
// the store's name journal to pick up the writer's appends, feeding an
// incremental bookkeep.Index so a page view costs memory lookups, not
// per-query record loads.
//
// Usage:
//
//	spserve -store ./spstore [-addr :8344] [-title "..."] [-refresh 1s]
//
// Endpoints:
//
//	/            HTML status matrix (Figure 3), with a freshness
//	             column when the store carries a recorded campaign plan
//	             (cells the producer last skipped as "up-to-date")
//	/runs/{id}   HTML page for one validation run
//	/diff/{id}   text diff of a run against its last successful baseline
//	/blob/{hash} raw kept artifact by content hash
//	/api/matrix  JSON status matrix (cells carry their input digest)
//	/api/plan    JSON form of the producer's last recorded campaign plan
//	/api/runs    JSON run list, paginated: ?limit= (default 500, capped
//	             at 5000) and ?after=run-NNNN (cursor; the response's
//	             next_after feeds the next page), ?experiment= restricts
//	             to one experiment. No request materializes the full
//	             run list of a large archive.
//	/healthz     liveness + store freshness
//
// -refresh bounds how often the journal is re-tailed: at most one
// refresh per interval, taken lazily on request arrival, so an idle
// service does no work and a busy one amortizes the (already cheap)
// catch-up across requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/buildsys"
	"repro/internal/campaign"
	"repro/internal/chain"
	"repro/internal/cron"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	storeDir := flag.String("store", "", "directory of the durable on-disk common storage (required)")
	addr := flag.String("addr", ":8344", "listen address")
	title := flag.String("title", "sp-system validation status", "page title")
	refresh := flag.Duration("refresh", time.Second, "minimum interval between store re-tails (0: every request)")
	flag.Parse()

	if err := run(*storeDir, *addr, *title, *refresh); err != nil {
		fmt.Fprintln(os.Stderr, "spserve:", err)
		os.Exit(1)
	}
}

func run(storeDir, addr, title string, refresh time.Duration) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	store, err := storage.OpenReadOnly(storeDir)
	if err != nil {
		return err
	}
	defer store.Close()
	srv, err := newServer(store, title, refresh)
	if err != nil {
		return err
	}
	fmt.Printf("spserve: serving %s on %s (%d runs indexed)\n", storeDir, addr, srv.index.TotalRuns())
	return http.ListenAndServe(addr, srv.handler())
}

// server holds the read view, the incremental index over it, and the
// refresh throttle. It is safe for concurrent request handling: the
// store view and index are individually thread-safe, and the throttle
// state sits behind its own mutex.
type server struct {
	store *storage.Store
	index *bookkeep.Index
	title string

	refreshEvery time.Duration
	// now is the clock source behind the refresh throttle: cron.Wall()
	// in production, a hand-advanced function in tests (the same seam
	// shape as cron.Driver), so throttle behavior is testable without
	// sleeping.
	now func() time.Time

	mu          sync.Mutex
	lastRefresh time.Time // guarded by mu
	lastErr     error     // guarded by mu
	// planRec and planNotes cache the store's latest recorded campaign
	// plan, reloaded inside the throttled refresh so matrix-page and
	// /api/plan traffic never pays a store read per request.
	planRec   *campaign.PlanRecord // guarded by mu
	planNotes map[string]string    // guarded by mu
}

// newServer builds a server over any Store (the read-only disk view in
// production, an in-memory store in tests) with the index fully loaded.
func newServer(store *storage.Store, title string, refreshEvery time.Duration) (*server, error) {
	x, err := bookkeep.BuildIndex(store)
	if err != nil {
		return nil, err
	}
	now := cron.Wall()
	s := &server{store: store, index: x, title: title, refreshEvery: refreshEvery, now: now, lastRefresh: now()}
	s.reloadPlanLocked()
	return s, nil
}

// refresh re-tails the store and catches the index up, at most once per
// refreshEvery. A refresh failure is remembered for /healthz but does
// not take pages down — the service keeps answering from its last good
// state.
func (s *server) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refreshEvery > 0 && s.now().Sub(s.lastRefresh) < s.refreshEvery {
		return
	}
	s.lastRefresh = s.now()
	if err := s.store.Refresh(); err != nil {
		s.lastErr = err
		return
	}
	s.lastErr = s.index.Refresh()
	s.reloadPlanLocked()
}

// reloadPlanLocked refreshes the cached producer plan and its per-cell
// note map. The caller holds s.mu (or, in newServer, sole ownership).
// A plan load *failure* (corrupt record) keeps the last good plan —
// freshness annotations go stale rather than taking pages down — but a
// store that simply has no plan clears the cache: the read view
// survives the store being torn down and recreated (Store.Refresh
// reloads it), and the old store's plan must not describe the new
// store's cells.
func (s *server) reloadPlanLocked() {
	plan, err := campaign.LoadLatestPlan(s.store)
	if err != nil {
		return
	}
	if plan == nil {
		s.planRec, s.planNotes = nil, nil
		return
	}
	notes := make(map[string]string, len(plan.Cells))
	for _, c := range plan.Cells {
		if c.Decision == "skip" {
			// An executed cell outranks a skipped one when a plan
			// touches the same (experiment, config, externals) twice.
			if _, dup := notes[c.Key()]; !dup {
				notes[c.Key()] = "up-to-date (" + c.PriorRunID + ")"
			}
		} else {
			notes[c.Key()] = "revalidated"
		}
	}
	s.planRec, s.planNotes = plan, notes
}

// handler wires the endpoint table. Path parameters are parsed by
// hand, keeping the mux compatible with every supported Go version.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveMatrix)
	mux.HandleFunc("/runs/", s.serveRun)
	mux.HandleFunc("/diff/", s.serveDiff)
	mux.HandleFunc("/blob/", s.serveBlob)
	mux.HandleFunc("/api/matrix", s.serveAPIMatrix)
	mux.HandleFunc("/api/plan", s.serveAPIPlan)
	mux.HandleFunc("/api/runs", s.serveAPIRuns)
	mux.HandleFunc("/healthz", s.serveHealthz)
	return mux
}

func (s *server) serveMatrix(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r) // the catch-all pattern must not answer for arbitrary paths
		return
	}
	s.refresh()
	page, err := report.HTMLMatrixNoted(s.title, s.index.Matrix(), s.index.TotalRuns(),
		func(runID string) string { return "/runs/" + runID }, s.planNote())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// pathParam extracts the single path parameter after prefix, rejecting
// empty values and further slashes.
func pathParam(path, prefix string) (string, bool) {
	p := strings.TrimPrefix(path, prefix)
	if p == "" || strings.Contains(p, "/") {
		return "", false
	}
	return p, true
}

func (s *server) serveRun(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/runs/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// Output links are content-addressed: resolve each kept artifact's
	// storage key to its blob hash at render time, so the link stays
	// valid forever even if the key were ever rebound. Chain tests keep
	// outputs in the files namespace; build jobs keep their tarballs in
	// the artifacts namespace.
	page, err := report.HTMLRunLinked(rec, func(key string) string {
		for _, ns := range []string{chain.FilesNS, buildsys.ArtifactNS} {
			if hash, err := s.store.Hash(ns, key); err == nil {
				return "/blob/" + hash
			}
		}
		return "" // not yet visible through the read view: no link
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

func (s *server) serveDiff(w http.ResponseWriter, r *http.Request) {
	id, ok := pathParam(r.URL.Path, "/diff/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	rec, err := s.index.Run(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	d, err := s.index.DiffAgainstLastSuccess(rec)
	if err != nil {
		// The run exists but has no successful predecessor — a normal
		// state for the first runs of an experiment, not a 404.
		fmt.Fprintf(w, "no baseline for %s: %v\n", id, err)
		return
	}
	fmt.Fprint(w, report.TextDiff(d))
}

func (s *server) serveBlob(w http.ResponseWriter, r *http.Request) {
	hash, ok := pathParam(r.URL.Path, "/blob/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.refresh()
	data, err := s.store.GetBlob(hash)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// planNote maps the cached producer plan onto matrix cells:
// "up-to-date (run-NNNN)" for cells the producer skipped,
// "revalidated" for cells it executed. It returns nil (no freshness
// column) when the store carries no plan — e.g. one recorded before the
// planner existed.
func (s *server) planNote() func(bookkeep.Cell) string {
	s.mu.Lock()
	notes := s.planNotes
	s.mu.Unlock()
	if notes == nil {
		return nil
	}
	return func(c bookkeep.Cell) string {
		return notes[campaign.CellKey(c.Experiment, c.Config, c.Externals)]
	}
}

func (s *server) serveAPIPlan(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	plan := s.planRec
	s.mu.Unlock()
	if plan == nil {
		http.Error(w, "no campaign plan recorded", http.StatusNotFound)
		return
	}
	writeJSON(w, plan)
}

func (s *server) serveAPIMatrix(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	writeJSON(w, struct {
		Title     string          `json:"title"`
		TotalRuns int             `json:"total_runs"`
		Cells     []bookkeep.Cell `json:"cells"`
	}{s.title, s.index.TotalRuns(), s.index.Matrix()})
}

// runSummary is one /api/runs entry.
type runSummary struct {
	RunID       string `json:"run_id"`
	Description string `json:"description"`
	Experiment  string `json:"experiment"`
	Config      string `json:"config"`
	Externals   string `json:"externals"`
	Revision    int    `json:"revision"`
	Timestamp   int64  `json:"timestamp"`
	Jobs        int    `json:"jobs"`
	Passed      bool   `json:"passed"`
}

// Pagination bounds for /api/runs: the default page, and the hard cap a
// client-supplied limit is clamped to. No request can make the service
// serialize the full run list of a long-lived archive.
const (
	defaultRunsLimit = 500
	maxRunsLimit     = 5000
)

// parseRunsQuery extracts limit/after/experiment from the request, with
// clamped defaults.
func parseRunsQuery(r *http.Request) (limit int, after, experiment string) {
	q := r.URL.Query()
	limit = defaultRunsLimit
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	if limit > maxRunsLimit {
		limit = maxRunsLimit
	}
	return limit, q.Get("after"), q.Get("experiment")
}

// serveAPIRuns answers the paged run listing: up to `limit` runs
// (default 500, capped) strictly after the `after` cursor, in execution
// order, with `next_after` carrying the cursor for the following page
// ("" on the last page). `experiment` restricts the walk to one
// experiment's runs via its per-experiment cursor.
func (s *server) serveAPIRuns(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	limit, after, experiment := parseRunsQuery(r)
	var metas []*bookkeep.RunMeta
	var next string
	total := s.index.TotalRuns()
	if experiment != "" {
		metas, next = s.index.RunsForPage(experiment, "", after, limit)
		total = s.index.TotalRunsFor(experiment)
	} else {
		metas, next = s.index.RunsPage(after, limit)
	}
	out := make([]runSummary, len(metas))
	for i, m := range metas {
		out[i] = runSummary{
			RunID: m.RunID, Description: m.Description, Experiment: m.Experiment,
			Config: m.Config, Externals: m.Externals, Revision: m.Revision,
			Timestamp: m.Timestamp, Jobs: m.Jobs, Passed: m.Passed,
		}
	}
	writeJSON(w, struct {
		Runs      []runSummary `json:"runs"`
		Total     int          `json:"total"` // runs in the listing's scope (the experiment's when filtered)
		NextAfter string       `json:"next_after,omitempty"`
	}{out, total, next})
}

func (s *server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	s.refresh()
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	errText := ""
	if lastErr != nil {
		// Still serving (from the last good state), but stale: say so.
		status, code, errText = "degraded", http.StatusServiceUnavailable, lastErr.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status  string `json:"status"`
		Runs    int    `json:"runs"`
		LastErr string `json:"last_error,omitempty"`
	}{status, s.index.TotalRuns(), errText})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
