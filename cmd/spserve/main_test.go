package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/externals"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/swrepo"
	"repro/internal/valtest"
)

// record runs one two-test suite (one pass with a kept artifact, one
// with the given outcome) against the store and returns the record.
// The serving tier's own tests live in internal/serve; the copies here
// feed the follower tests end-to-end fixtures.
func record(t *testing.T, store *storage.Store, rn *runner.Runner, exp, desc string, second valtest.Outcome) *runner.RunRecord {
	t.Helper()
	suite := valtest.NewSuite(exp)
	suite.MustAdd(&valtest.FuncTest{TestName: "keeper", Cat: valtest.CatStandalone,
		Fn: func(ctx *valtest.Context) valtest.Result {
			key := ctx.Env[storage.EnvRunID] + "/artifact"
			if _, err := ctx.Store.Put(chain.FilesNS, key, []byte("kept output of "+desc)); err != nil {
				return valtest.Result{Outcome: valtest.OutcomeError, Detail: err.Error()}
			}
			return valtest.Result{Outcome: valtest.OutcomePass, OutputKey: key}
		}})
	suite.MustAdd(&valtest.FuncTest{TestName: "other", Cat: valtest.CatStandalone,
		Fn: func(*valtest.Context) valtest.Result {
			return valtest.Result{Outcome: second, Detail: "synthetic"}
		}})
	cat := externals.NewCatalogue()
	root, _ := cat.Get(externals.ROOT, "5.34")
	ctx := &valtest.Context{
		Store:     store,
		Env:       storage.Env{},
		Config:    platform.ReferenceConfig(),
		Registry:  platform.NewRegistry(),
		Externals: externals.MustSet(root),
		Repo:      swrepo.NewRepository(exp),
	}
	rec, err := rn.Run(suite, ctx, desc)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestRunRequiresStore(t *testing.T) {
	if err := run("", ":0", "t", time.Second, "", time.Second); err == nil {
		t.Fatal("missing -store accepted")
	}
	if err := run("/nonexistent/spstroe", ":0", "t", time.Second, "", time.Second); err == nil {
		t.Fatal("mistyped store path accepted")
	}
	// Follower mode needs a local replica directory and a live source.
	if err := run("http://example.invalid", ":0", "t", time.Second, "http://example.invalid", time.Second); err == nil {
		t.Fatal("follower with a URL replica accepted")
	}
}
