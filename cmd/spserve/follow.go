package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/serve"
	"repro/internal/storage"
)

// follower replicates a primary store into a local directory and keeps
// it converging on a cadence — the multi-site topology's read scale-out
// unit. The replica directory is a full, independently-valid store: the
// follower process is its single (exclusive-lock) writer, every other
// consumer reads it like any store, and if the follower dies the
// directory stands alone.
type follower struct {
	source string
	every  time.Duration
	src    *storage.Store
	rb     *storage.RemoteBackend
	dst    *storage.Store

	mu sync.Mutex
	// lastPos is the source position the replica is known to cover —
	// the position Sync sampled before its last completed transfer.
	lastPos   storage.Position // guarded by mu
	lastPosOK bool             // guarded by mu
	syncs     int              // guarded by mu
	skips     int              // guarded by mu
	lastErr   error            // guarded by mu
}

// newFollower opens the source URL and the replica directory. The
// directory is opened writable — the follower is its one writer.
func newFollower(sourceURL, replicaDir string, every time.Duration) (*follower, error) {
	if storage.IsRemoteStore(replicaDir) {
		return nil, fmt.Errorf("-follow replicates into a local directory; -store %s is a URL", replicaDir)
	}
	if every <= 0 {
		return nil, fmt.Errorf("-every must be positive, got %v", every)
	}
	src, err := storage.OpenRemote(sourceURL)
	if err != nil {
		return nil, err
	}
	dst, err := storage.Open(replicaDir)
	if err != nil {
		src.Close()
		return nil, err
	}
	return &follower{
		source: sourceURL,
		every:  every,
		src:    src,
		rb:     src.Backend().(*storage.RemoteBackend),
		dst:    dst,
	}, nil
}

// sync runs one replication pass and records its outcome for /healthz.
// A converged follower short-circuits: when the last pass completed and
// the primary's /position has not moved since, the tick costs one probe
// instead of Sync's full name walk. Any doubt — probe failure, a
// positionless source, a moved or regressed position — falls through to
// the full pass, which remains the correctness path.
func (f *follower) sync() error {
	f.mu.Lock()
	last, lastOK, converged := f.lastPos, f.lastPosOK, f.syncs > 0 && f.lastErr == nil
	f.mu.Unlock()
	if converged && lastOK {
		if doc, err := f.rb.RemotePosition(); err == nil && doc.PositionOK && doc.Position == last {
			f.mu.Lock()
			f.skips++
			f.mu.Unlock()
			return nil
		}
	}
	st, err := storage.Sync(f.src, f.dst)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.lastErr = err
		return err
	}
	f.lastErr = nil
	f.syncs++
	f.lastPos, f.lastPosOK = st.SourcePos, st.SourcePosOK
	return nil
}

// loop re-syncs on the cadence until stop closes. A failed pass is
// recorded (and surfaces as degraded /healthz) but never ends the
// loop: the primary being down is an operational state, not a replica
// crash.
func (f *follower) loop(stop <-chan struct{}) {
	next, err := cron.Every(f.every)
	if err != nil {
		return // unreachable: newFollower validated the cadence
	}
	d := cron.NewDriver(next)
	for {
		if _, ok, err := d.Wait(stop); !ok || err != nil {
			return
		}
		f.sync() //nolint:errcheck — recorded in f.lastErr for /healthz
	}
}

// FollowStatus assembles the /healthz follow block, probing the
// source's live position to compute lag. It implements
// serve.FollowReporter.
func (f *follower) FollowStatus() serve.FollowStatus {
	doc, probeErr := f.rb.RemotePosition()
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := serve.FollowStatus{Source: f.source, Every: f.every.String(),
		Syncs: f.syncs, SkippedSyncs: f.skips, LagBytes: -1}
	if probeErr != nil {
		fs.SourceErr = probeErr.Error()
	} else if doc.PositionOK && f.lastPosOK && doc.Position.Generation == f.lastPos.Generation {
		fs.LagBytes = doc.Position.Offset - f.lastPos.Offset
	}
	if f.lastErr != nil {
		fs.LastSyncErr = f.lastErr.Error()
	}
	return fs
}

// Close releases both sides. The replica store is closed here because
// the follower owns its writer handle.
func (f *follower) Close() error {
	f.src.Close()
	return f.dst.Close()
}
