package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cron"
	"repro/internal/storage"
)

// follower replicates a primary store into a local directory and keeps
// it converging on a cadence — the multi-site topology's read scale-out
// unit. The replica directory is a full, independently-valid store: the
// follower process is its single (exclusive-lock) writer, every other
// consumer reads it like any store, and if the follower dies the
// directory stands alone.
type follower struct {
	source string
	every  time.Duration
	src    *storage.Store
	rb     *storage.RemoteBackend
	dst    *storage.Store

	mu sync.Mutex
	// lastPos is the source position the replica is known to cover —
	// the position Sync sampled before its last completed transfer.
	lastPos   storage.Position // guarded by mu
	lastPosOK bool             // guarded by mu
	syncs     int              // guarded by mu
	lastErr   error            // guarded by mu
}

// followStatus is the /healthz follow block. LagBytes is the span of
// source journal the replica has not yet covered (generation-matched
// byte offsets); -1 means the lag is momentarily incomparable — the
// source compacted into a new generation, or it cannot be reached —
// and the next sync re-converges.
type followStatus struct {
	Source      string `json:"source"`
	Every       string `json:"every"`
	Syncs       int    `json:"syncs"`
	LagBytes    int64  `json:"lag_bytes"`
	SourceErr   string `json:"source_error,omitempty"`
	LastSyncErr string `json:"last_sync_error,omitempty"`
}

// newFollower opens the source URL and the replica directory. The
// directory is opened writable — the follower is its one writer.
func newFollower(sourceURL, replicaDir string, every time.Duration) (*follower, error) {
	if storage.IsRemoteStore(replicaDir) {
		return nil, fmt.Errorf("-follow replicates into a local directory; -store %s is a URL", replicaDir)
	}
	if every <= 0 {
		return nil, fmt.Errorf("-every must be positive, got %v", every)
	}
	src, err := storage.OpenRemote(sourceURL)
	if err != nil {
		return nil, err
	}
	dst, err := storage.Open(replicaDir)
	if err != nil {
		src.Close()
		return nil, err
	}
	return &follower{
		source: sourceURL,
		every:  every,
		src:    src,
		rb:     src.Backend().(*storage.RemoteBackend),
		dst:    dst,
	}, nil
}

// sync runs one replication pass and records its outcome for /healthz.
func (f *follower) sync() error {
	st, err := storage.Sync(f.src, f.dst)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.lastErr = err
		return err
	}
	f.lastErr = nil
	f.syncs++
	f.lastPos, f.lastPosOK = st.SourcePos, st.SourcePosOK
	return nil
}

// loop re-syncs on the cadence until stop closes. A failed pass is
// recorded (and surfaces as degraded /healthz) but never ends the
// loop: the primary being down is an operational state, not a replica
// crash.
func (f *follower) loop(stop <-chan struct{}) {
	next, err := cron.Every(f.every)
	if err != nil {
		return // unreachable: newFollower validated the cadence
	}
	d := cron.NewDriver(next)
	for {
		if _, ok, err := d.Wait(stop); !ok || err != nil {
			return
		}
		f.sync() //nolint:errcheck — recorded in f.lastErr for /healthz
	}
}

// status assembles the /healthz follow block, probing the source's
// live position to compute lag.
func (f *follower) status() followStatus {
	doc, probeErr := f.rb.RemotePosition()
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := followStatus{Source: f.source, Every: f.every.String(), Syncs: f.syncs, LagBytes: -1}
	if probeErr != nil {
		fs.SourceErr = probeErr.Error()
	} else if doc.PositionOK && f.lastPosOK && doc.Position.Generation == f.lastPos.Generation {
		fs.LagBytes = doc.Position.Offset - f.lastPos.Offset
	}
	if f.lastErr != nil {
		fs.LastSyncErr = f.lastErr.Error()
	}
	return fs
}

// Close releases both sides. The replica store is closed here because
// the follower owns its writer handle.
func (f *follower) Close() error {
	f.src.Close()
	return f.dst.Close()
}
