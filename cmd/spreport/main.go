// Command spreport regenerates the sp-system's status web pages from a
// storage snapshot (produced with `spsys campaign -save FILE`) and
// writes them to a directory — the paper's "script-based web pages",
// rebuildable at any time from the bookkeeping alone.
//
// Usage:
//
//	spreport -snapshot campaign.json -out ./site
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bookkeep"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	snapshot := flag.String("snapshot", "", "storage snapshot file (required)")
	out := flag.String("out", "site", "output directory for HTML pages")
	title := flag.String("title", "sp-system validation status", "page title")
	flag.Parse()

	if err := run(*snapshot, *out, *title); err != nil {
		fmt.Fprintln(os.Stderr, "spreport:", err)
		os.Exit(1)
	}
}

func run(snapshotPath, outDir, title string) error {
	if snapshotPath == "" {
		return fmt.Errorf("-snapshot is required")
	}
	data, err := os.ReadFile(snapshotPath)
	if err != nil {
		return err
	}
	store, err := storage.Restore(data)
	if err != nil {
		return err
	}

	if _, err := report.PublishSite(store, title); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written := 0
	for _, key := range store.List(report.WebNS) {
		page, err := store.Get(report.WebNS, key)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, page, 0o644); err != nil {
			return err
		}
		written++
	}

	// Also print the text matrix for terminal use.
	book := bookkeep.New(store)
	cells, err := book.Matrix()
	if err != nil {
		return err
	}
	fmt.Print(report.TextMatrix(cells))
	fmt.Printf("\n%d pages written to %s\n", written, outDir)
	if !strings.HasSuffix(outDir, "/") {
		fmt.Printf("open %s/index.html to browse\n", outDir)
	}
	return nil
}
