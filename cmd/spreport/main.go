// Command spreport regenerates the sp-system's status web pages and
// writes them to a directory — the paper's "script-based web pages",
// rebuildable at any time from the bookkeeping alone. It reads the
// bookkeeping either from a durable on-disk common storage shared with
// other sp-system clients (produced with `spsys campaign -store DIR`)
// or from a one-file storage snapshot (produced with `spsys campaign
// -save FILE`).
//
// Usage:
//
//	spreport -store ./spstore -out ./site
//	spreport -snapshot campaign.json -out ./site
//
// The -store form is the paper's actual workflow: the campaign runner
// and the report generator are independent clients of one common
// storage, so the site can be rebuilt at any time by a fresh process
// without the campaign process being involved.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bookkeep"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	snapshot := flag.String("snapshot", "", "storage snapshot file (alternative to -store)")
	storeDir := flag.String("store", "", "directory of the durable on-disk common storage (alternative to -snapshot)")
	out := flag.String("out", "site", "output directory for HTML pages")
	title := flag.String("title", "sp-system validation status", "page title")
	flag.Parse()

	if err := run(*snapshot, *storeDir, *out, *title); err != nil {
		fmt.Fprintln(os.Stderr, "spreport:", err)
		os.Exit(1)
	}
}

// openSource returns the common storage named by exactly one of
// snapshotPath and storeDir.
func openSource(snapshotPath, storeDir string) (*storage.Store, error) {
	switch {
	case snapshotPath == "" && storeDir == "":
		return nil, fmt.Errorf("one of -store or -snapshot is required")
	case snapshotPath != "" && storeDir != "":
		return nil, fmt.Errorf("-store and -snapshot are mutually exclusive")
	case storeDir != "":
		// A missing directory is a mistyped path, not a request to
		// create an empty store (which storage.Open would happily do)
		// and render an all-blank site from it. Note spreport is not
		// purely read-only: like every sp-system client it regenerates
		// the status pages onto the common storage it opens.
		if _, err := os.Stat(filepath.Join(storeDir, "names.log")); err != nil {
			return nil, fmt.Errorf("%s is not an sp-system store (no names.log): %w", storeDir, err)
		}
		return storage.Open(storeDir)
	default:
		data, err := os.ReadFile(snapshotPath)
		if err != nil {
			return nil, err
		}
		return storage.Restore(data)
	}
}

func run(snapshotPath, storeDir, outDir, title string) (err error) {
	store, err := openSource(snapshotPath, storeDir)
	if err != nil {
		return err
	}
	// Close syncs the disk backend's journal (the regenerated pages'
	// bindings); a failure there must not exit 0.
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if _, err := report.PublishSite(store, title); err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written := 0
	for _, key := range store.List(report.WebNS) {
		page, err := store.Get(report.WebNS, key)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, page, 0o644); err != nil {
			return err
		}
		written++
	}

	// Also print the text matrix for terminal use.
	book := bookkeep.New(store)
	cells, err := book.Matrix()
	if err != nil {
		return err
	}
	fmt.Print(report.TextMatrix(cells))
	fmt.Printf("\n%d pages written to %s\n", written, outDir)
	if !strings.HasSuffix(outDir, "/") {
		fmt.Printf("open %s/index.html to browse\n", outDir)
	}
	return nil
}
