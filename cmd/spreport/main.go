// Command spreport regenerates the sp-system's status web pages and
// writes them to a directory — the paper's "script-based web pages",
// rebuildable at any time from the bookkeeping alone. It reads the
// bookkeeping either from a durable on-disk common storage shared with
// other sp-system clients (produced with `spsys campaign -store DIR`)
// or from a one-file storage snapshot (produced with `spsys campaign
// -save FILE`).
//
// Usage:
//
//	spreport -store ./spstore -out ./site
//	spreport -store http://primary:8344 -out ./site
//	spreport -snapshot campaign.json -out ./site
//
// The -store form is the paper's actual workflow: the campaign runner
// and the report generator are independent clients of one common
// storage. spreport opens a directory through storage.OpenReadOnly —
// the shared-lock read view — so it works while a campaign process
// holds the exclusive writer lock, and it renders pages straight to
// -out without writing anything back to the store. An http(s) URL is
// opened through storage.OpenRemote instead, reading a store another
// spserve process publishes over its /api/v1/ store API — the site can
// be regenerated on a machine that has no copy of the store at all.
// (For a continuously refreshing live view, see spserve.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bookkeep"
	"repro/internal/report"
	"repro/internal/storage"
)

func main() {
	snapshot := flag.String("snapshot", "", "storage snapshot file (alternative to -store)")
	storeDir := flag.String("store", "", "directory or spserve URL of the common storage (alternative to -snapshot)")
	out := flag.String("out", "site", "output directory for HTML pages")
	title := flag.String("title", "sp-system validation status", "page title")
	flag.Parse()

	if err := run(*snapshot, *storeDir, *out, *title); err != nil {
		fmt.Fprintln(os.Stderr, "spreport:", err)
		os.Exit(1)
	}
}

// openSource returns the common storage named by exactly one of
// snapshotPath and storeDir, opened strictly read-only.
func openSource(snapshotPath, storeDir string) (*storage.Store, error) {
	switch {
	case snapshotPath == "" && storeDir == "":
		return nil, fmt.Errorf("one of -store or -snapshot is required")
	case snapshotPath != "" && storeDir != "":
		return nil, fmt.Errorf("-store and -snapshot are mutually exclusive")
	case storage.IsRemoteStore(storeDir):
		// A URL names a store served by spserve: read it through the
		// /api/v1/ store API. OpenRemote fails on an unreachable or
		// non-store URL, the same mistyped-path protection the stat
		// below gives directories.
		return storage.OpenRemote(storeDir)
	case storeDir != "":
		// A missing directory is a mistyped path, not a request to
		// create an empty store and render an all-blank site from it.
		// OpenReadOnly refuses to create anything, but checking for the
		// journal distinguishes "not a store" from "empty directory".
		if _, err := os.Stat(filepath.Join(storeDir, "names.log")); err != nil {
			return nil, fmt.Errorf("%s is not an sp-system store (no names.log): %w", storeDir, err)
		}
		return storage.OpenReadOnly(storeDir)
	default:
		data, err := os.ReadFile(snapshotPath)
		if err != nil {
			return nil, err
		}
		return storage.Restore(data)
	}
}

func run(snapshotPath, storeDir, outDir, title string) (err error) {
	store, err := openSource(snapshotPath, storeDir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// One pass over the records, then everything renders from memory.
	index, err := bookkeep.BuildIndex(store)
	if err != nil {
		return err
	}
	pages, err := report.RenderSite(index, title)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	written := 0
	for key, page := range pages {
		path := filepath.Join(outDir, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		//spvet:allow storewrite — the report site is a rendered export directory, not a store
		if err := os.WriteFile(path, page, 0o644); err != nil {
			return err
		}
		written++
	}

	// Also print the text matrix for terminal use.
	fmt.Print(report.TextMatrix(index.Matrix()))
	fmt.Printf("\n%d pages written to %s\n", written, outDir)
	if !strings.HasSuffix(outDir, "/") {
		fmt.Printf("open %s/index.html to browse\n", outDir)
	}
	return nil
}
