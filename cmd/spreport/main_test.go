package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
)

// writeSnapshot produces a small real storage snapshot the way
// `spsys campaign -save` would: one validated experiment.
func writeSnapshot(t *testing.T, path string) {
	t.Helper()
	sys := core.New()
	def := experiments.H1()
	def.RepoSpec.Packages = 10
	def.ChainEvents = 200
	def.StandaloneTests = 5
	if err := sys.RegisterExperiment(def); err != nil {
		t.Fatal(err)
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Validate("H1", platform.ReferenceConfig(), exts, "snapshot fixture"); err != nil {
		t.Fatal(err)
	}
	data, err := sys.Store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegeneratesSite(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "campaign.json")
	writeSnapshot(t, snap)

	out := filepath.Join(dir, "site")
	if err := run(snap, out, "test status"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "index.html")); err != nil {
		t.Fatalf("index.html not written: %v", err)
	}
}

func TestRunRequiresSnapshot(t *testing.T) {
	if err := run("", t.TempDir(), "t"); err == nil {
		t.Fatal("missing -snapshot accepted")
	}
}

func TestRunRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(snap, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(snap, filepath.Join(dir, "site"), "t"); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
