package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/storage"
)

// populate runs one scaled-down validated experiment against the given
// store — the state `spsys campaign` leaves behind.
func populate(t *testing.T, store *storage.Store) *core.SPSystem {
	t.Helper()
	sys := core.NewWith(store, platform.NewRegistry())
	def := experiments.H1()
	def.RepoSpec.Packages = 10
	def.ChainEvents = 200
	def.StandaloneTests = 5
	if err := sys.RegisterExperiment(def); err != nil {
		t.Fatal(err)
	}
	exts, err := experiments.StandardSet(sys.Catalogue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Validate("H1", platform.ReferenceConfig(), exts, "report fixture"); err != nil {
		t.Fatal(err)
	}
	return sys
}

// writeSnapshot produces a small real storage snapshot the way
// `spsys campaign -save` would: one validated experiment.
func writeSnapshot(t *testing.T, path string) {
	t.Helper()
	sys := populate(t, storage.NewStore())
	data, err := sys.Store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunRegeneratesSiteFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "campaign.json")
	writeSnapshot(t, snap)

	out := filepath.Join(dir, "site")
	if err := run(snap, "", out, "test status"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "index.html")); err != nil {
		t.Fatalf("index.html not written: %v", err)
	}
}

// TestRunRegeneratesSiteFromStore is the paper's cross-process workflow:
// one process records a campaign onto the durable common storage and
// exits; a fresh spreport process renders the status site from the same
// directory, producing the same matrix the recording process saw.
func TestRunRegeneratesSiteFromStore(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "spstore")

	store, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	sys := populate(t, store)
	cells, err := sys.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix := report.TextMatrix(cells)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "site")
	if err := run("", storeDir, out, "test status"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "index.html")); err != nil {
		t.Fatalf("index.html not written: %v", err)
	}

	// The fresh process reads the identical matrix back.
	re, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reSys := core.NewWith(re, platform.NewRegistry())
	reCells, err := reSys.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if got := report.TextMatrix(reCells); got != wantMatrix {
		t.Fatalf("matrix from reopened store differs:\n got:\n%s\nwant:\n%s", got, wantMatrix)
	}
}

// TestRunRegeneratesSiteFromURL renders the site from a store another
// process publishes over the /api/v1/ store API — the remote-site
// workflow: no local copy of the store exists on the rendering host.
func TestRunRegeneratesSiteFromURL(t *testing.T) {
	store := storage.NewStore()
	populate(t, store)
	ts := httptest.NewServer(http.StripPrefix("/api/v1", storage.NewAPIHandler(store, nil)))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "site")
	if err := run("", ts.URL, out, "remote status"); err != nil {
		t.Fatalf("spreport against a served store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "index.html")); err != nil {
		t.Fatalf("index.html not written: %v", err)
	}
}

// TestRunWhileCampaignWriterIsLive is the regression test for the
// lock-contention bug: spreport used to take the exclusive writer
// flock and failed while a campaign process had the store open. The
// read-only view attaches alongside the live writer and renders what
// is recorded so far.
func TestRunWhileCampaignWriterIsLive(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "spstore")
	writer, err := storage.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close() // the "campaign" holds its lock for the whole test
	populate(t, writer)

	out := filepath.Join(dir, "site")
	if err := run("", storeDir, out, "live status"); err != nil {
		t.Fatalf("spreport against a live-locked store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "index.html")); err != nil {
		t.Fatalf("index.html not written: %v", err)
	}
	// The writer is still fully functional afterwards.
	if _, err := writer.Put("ns", "still-writable", []byte("y")); err != nil {
		t.Fatalf("writer broken after spreport ran: %v", err)
	}
}

func TestRunRequiresSource(t *testing.T) {
	if err := run("", "", t.TempDir(), "t"); err == nil {
		t.Fatal("missing -snapshot/-store accepted")
	}
}

func TestRunRejectsMissingStoreDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "spstroe") // typo'd path
	if err := run("", missing, t.TempDir(), "t"); err == nil {
		t.Fatal("nonexistent store directory accepted")
	}
	// The read-only consumer must not have created a store there.
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("spreport created a store at the mistyped path")
	}
}

func TestRunRejectsBothSources(t *testing.T) {
	if err := run("a.json", "dir", t.TempDir(), "t"); err == nil {
		t.Fatal("-snapshot together with -store accepted")
	}
}

func TestRunRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(snap, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(snap, "", filepath.Join(dir, "site"), "t"); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
