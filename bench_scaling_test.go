// Scaling benchmarks for the million-run-archive storage work: store
// open (journal replay vs snapshot load), bookkeeping index refresh
// (record rescan vs persisted segment), and journal append throughput
// (per-append fsync vs group commit). Fixture stores are synthesized
// once per size and shared across benchmarks; the "seed" variants
// emulate the pre-snapshot (PR 4) behavior — full-journal JSON replay
// plus a blob-tree walk at open, and a per-record decode at index
// build — so BENCH_ci.json captures the before/after trajectory at
// every size.
package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bookkeep"
	"repro/internal/runner"
	"repro/internal/storage"
)

// storeSizes are the synthesized-store sizes the scaling benchmarks
// sweep. 100k runs is the archive scale the snapshot/segment work
// targets.
var storeSizes = []int{1000, 10000, 100000}

// synthFixtures caches one synthesized store directory per size for the
// whole benchmark process; TestMain removes them.
var (
	synthMu       sync.Mutex
	synthFixtures = map[int]string{}
	synthRoot     string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if synthRoot != "" {
		os.RemoveAll(synthRoot)
	}
	os.Exit(code)
}

// synthStore returns (building on first use) a store directory holding
// n synthetic run records, journal-only (never compacted) — the state a
// PR 4 era writer leaves behind.
func synthStore(b *testing.B, n int) string {
	b.Helper()
	synthMu.Lock()
	defer synthMu.Unlock()
	if dir, ok := synthFixtures[n]; ok {
		return dir
	}
	if synthRoot == "" {
		root, err := os.MkdirTemp("", "spbench-stores-*")
		if err != nil {
			b.Fatal(err)
		}
		synthRoot = root
	}
	dir := filepath.Join(synthRoot, fmt.Sprintf("runs-%d", n))
	st, err := storage.OpenWith(dir, storage.Options{Sync: storage.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := runner.SynthesizeRuns(st, n, runner.SynthOptions{FailEvery: 10}); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	synthFixtures[n] = dir
	return dir
}

// seedOpen emulates the pre-snapshot open path byte for byte: decode
// every names.log line with encoding/json (the seed's per-line decoder)
// and walk the whole blob tree for statistics — both O(lifetime).
func seedOpen(b *testing.B, dir string) (bindings, blobs int) {
	b.Helper()
	f, err := os.Open(filepath.Join(dir, "names.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	names := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e struct {
			Name string `json:"n"`
			Hash string `json:"h"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			b.Fatal(err)
		}
		names[e.Name] = e.Hash
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}
	err = filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if _, err := d.Info(); err != nil {
			return err
		}
		blobs++
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return len(names), blobs
}

// BenchmarkStoreOpen prices reopening a store at each size, three ways:
//
//	seed       emulated PR 4 behavior (per-line JSON replay + blob walk)
//	journal    current code on a never-compacted store
//	compacted  current code after `spsys store compact`
//
// The compacted open loads the checksummed snapshot and replays an
// empty journal tail — O(appends since compaction), not O(lifetime).
func BenchmarkStoreOpen(b *testing.B) {
	for _, n := range storeSizes {
		dir := synthStore(b, n)
		b.Run(fmt.Sprintf("runs=%d/seed", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if bindings, _ := seedOpen(b, dir); bindings < n {
					b.Fatalf("seed open applied %d bindings", bindings)
				}
			}
		})
		b.Run(fmt.Sprintf("runs=%d/journal", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := storage.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if !st.Exists("runs", lastSynthRunID(n)) {
					b.Fatal("short open")
				}
				st.Close()
			}
		})
		// Compact a copy so the shared journal-only fixture stays
		// pristine for other benchmarks and orderings.
		cdir := dir + "-compacted"
		if _, err := os.Stat(cdir); os.IsNotExist(err) {
			if err := copyStore(dir, cdir); err != nil {
				b.Fatal(err)
			}
			st, err := storage.OpenWith(cdir, storage.Options{Sync: storage.SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Compact(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("runs=%d/compacted", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := storage.Open(cdir)
				if err != nil {
					b.Fatal(err)
				}
				if !st.Exists("runs", lastSynthRunID(n)) {
					b.Fatal("short open")
				}
				st.Close()
			}
		})
	}
}

// copyStore clones a store directory (hard-linking blobs — they are
// immutable — and copying the journal), so benchmark variants can
// mutate their own copy.
func copyStore(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if rel == "lock" || rel == "lock.read" {
			return nil
		}
		if rel == "names.log" || rel == "names.snapshot" {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(target, data, 0o644)
		}
		return os.Link(path, target)
	})
}

// BenchmarkIndexRefresh prices building the bookkeeping index over each
// store size, three ways:
//
//	rescan   decode every run record blob (the pre-segment behavior,
//	         and the fallback when no segment validates)
//	segment  decode the persisted index segment + the journal tail
//	steady   Refresh() an already-built index over an unchanged store
//	         (the per-request cost inside spserve)
func BenchmarkIndexRefresh(b *testing.B) {
	for _, n := range storeSizes {
		dir := synthStore(b, n)
		st, err := storage.OpenWith(dir, storage.Options{Sync: storage.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("runs=%d/rescan", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x, err := bookkeep.RebuildIndex(st)
				if err != nil {
					b.Fatal(err)
				}
				if x.TotalRuns() != n {
					b.Fatalf("indexed %d runs", x.TotalRuns())
				}
			}
		})
		x, err := bookkeep.BuildIndex(st)
		if err != nil {
			b.Fatal(err)
		}
		if err := x.SaveSegment(st); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("runs=%d/segment", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x, err := bookkeep.BuildIndex(st)
				if err != nil {
					b.Fatal(err)
				}
				if x.TotalRuns() != n {
					b.Fatalf("indexed %d runs", x.TotalRuns())
				}
			}
		})
		b.Run(fmt.Sprintf("runs=%d/steady", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := x.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Remove the segment binding's blob? Bindings are permanent by
		// design; the rescan sub-benchmark above ran before the segment
		// existed, so ordering keeps the variants honest. Close releases
		// the writer lock for the next size.
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReopenRefresh is the acceptance benchmark of the
// snapshot/segment work, end to end: a fresh process re-opening an
// unchanged store and rebuilding its bookkeeping index, seed style
// (full-journal JSON replay + blob walk + per-record decode) versus
// current style (snapshot load + segment decode). The "snapshot"
// variant also reports the measured seed-vs-snapshot speedup as a
// custom metric, so BENCH_ci.json carries the headline ratio directly.
func BenchmarkStoreReopenRefresh(b *testing.B) {
	for _, n := range storeSizes {
		dir := synthStore(b, n)
		seedPass := func() {
			if bindings, _ := seedOpen(b, dir); bindings < n {
				b.Fatalf("seed open applied %d bindings", bindings)
			}
			st, err := storage.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			x, err := bookkeep.RebuildIndex(st)
			if err != nil {
				b.Fatal(err)
			}
			if x.TotalRuns() != n {
				b.Fatalf("indexed %d runs", x.TotalRuns())
			}
			st.Close()
		}
		b.Run(fmt.Sprintf("runs=%d/seed", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seedPass()
			}
		})
		// A compacted copy with a saved segment: what the daemon leaves
		// behind after a steady-state cycle.
		cdir := dir + "-reopen"
		if _, err := os.Stat(cdir); os.IsNotExist(err) {
			if err := copyStore(dir, cdir); err != nil {
				b.Fatal(err)
			}
			st, err := storage.OpenWith(cdir, storage.Options{Sync: storage.SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := st.Compact(); err != nil {
				b.Fatal(err)
			}
			x, err := bookkeep.BuildIndex(st)
			if err != nil {
				b.Fatal(err)
			}
			if err := x.SaveSegment(st); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("runs=%d/snapshot", n), func(b *testing.B) {
			seedStart := nowMono()
			seedPass()
			seedDur := nowMono() - seedStart
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := storage.Open(cdir)
				if err != nil {
					b.Fatal(err)
				}
				x, err := bookkeep.BuildIndex(st)
				if err != nil {
					b.Fatal(err)
				}
				if x.TotalRuns() != n {
					b.Fatalf("indexed %d runs", x.TotalRuns())
				}
				st.Close()
			}
			b.StopTimer()
			perOp := b.Elapsed() / time.Duration(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(seedDur)/float64(perOp), "seed-speedup")
			}
		})
	}
}

func nowMono() time.Duration { return time.Since(benchEpoch) }

var benchEpoch = time.Now()

// BenchmarkGroupCommitAppend prices journal append throughput under the
// power-loss-durable SyncJournal mode:
//
//	writers=1  every append pays its own fsync (the naive durable
//	           baseline — what per-binding fsync would cost)
//	writers=8  8 concurrent writers; group commit coalesces their
//	           entries into shared write+fsync batches
//
// Each benchmark iteration is a burst of 256 appends spread across the
// writers (so even CI's -benchtime 3x exercises real batching); the
// appends/s custom metric is directly comparable between the variants,
// and their ratio is the group-commit win.
func BenchmarkGroupCommitAppend(b *testing.B) {
	const appendsPerOp = 256
	payload := []byte("group commit payload")
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			st, err := storage.OpenWith(b.TempDir(), storage.Options{Sync: storage.SyncJournal})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			hash, err := st.PutBlob(payload)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				var next int64
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w, i int) {
						defer wg.Done()
						for {
							j := atomic.AddInt64(&next, 1)
							if j > appendsPerOp {
								return
							}
							if err := st.Bind("bench", fmt.Sprintf("i%d-w%d-j%d", i, w, j), hash); err != nil {
								b.Error(err)
								return
							}
						}
					}(w, i)
				}
				wg.Wait()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(appendsPerOp)*float64(b.N)/secs, "appends/s")
			}
		})
	}
}

// lastSynthRunID is the ID of the n-th synthesized run — a cheap
// open-completeness probe that, unlike Stats, does not trigger the lazy
// blob-statistics walk inside a timed loop.
func lastSynthRunID(n int) string { return fmt.Sprintf("run-%04d", n) }

// BenchmarkStoreSync prices one-way replication of a 5k-run store —
// the multi-site transfer `spsys store sync` and `spserve -follow`
// run. Three shapes:
//
//	cold/dir    full transfer, filesystem to filesystem
//	cold/http   full transfer pulled through the /api/v1/ store API
//	resync      steady-state pass over an identical pair (the no-op
//	            every follower cadence tick pays)
//
// The metrics report blob payload moved per second of transfer;
// resync's number is diff cost, not transfer.
func BenchmarkStoreSync(b *testing.B) {
	const n = 5000
	dir := synthStore(b, n)

	runSync := func(b *testing.B, src *storage.Store) {
		b.Helper()
		var moved int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dst, err := storage.OpenWith(filepath.Join(b.TempDir(), "replica"), storage.Options{Sync: storage.SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			st, err := storage.Sync(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if st.BindingsBound <= n {
				b.Fatalf("short sync: %d bindings", st.BindingsBound)
			}
			moved += st.BlobBytes
			if err := dst.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(moved)/secs/1e6, "MB/s")
			b.ReportMetric(float64(n)*float64(b.N)/secs, "runs/s")
		}
	}

	b.Run("cold/dir", func(b *testing.B) {
		src, err := storage.OpenReadOnly(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
		runSync(b, src)
	})

	b.Run("cold/http", func(b *testing.B) {
		view, err := storage.OpenReadOnly(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer view.Close()
		ts := httptest.NewServer(http.StripPrefix("/api/v1", storage.NewAPIHandler(view, nil)))
		defer ts.Close()
		src, err := storage.OpenRemote(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
		runSync(b, src)
	})

	b.Run("resync", func(b *testing.B) {
		src, err := storage.OpenReadOnly(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer src.Close()
		dst, err := storage.OpenWith(filepath.Join(b.TempDir(), "replica"), storage.Options{Sync: storage.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		defer dst.Close()
		if _, err := storage.Sync(src, dst); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := storage.Sync(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			if st.BlobsCopied != 0 || st.BindingsBound != 0 {
				b.Fatalf("resync moved %+v", st)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(n)*float64(b.N)/secs, "runs/s")
		}
	})
}
